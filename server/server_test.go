package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"krcore"
	"krcore/api"
	"krcore/client"
)

// testEngine builds a small two-cluster geo instance and a static
// engine over it.
func testEngine(t *testing.T) (*krcore.Engine, *krcore.Graph) {
	t.Helper()
	const n = 40
	b := krcore.NewGraphBuilder(n)
	for c := 0; c < 2; c++ {
		base := int32(c * 20)
		for i := int32(0); i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if (i+j)%3 != 0 {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	b.AddEdge(19, 20)
	g := b.Build()
	geo := krcore.NewGeoAttributes(n)
	for u := int32(0); u < n; u++ {
		geo.Set(u, float64(u/20)*100, float64(u%20))
	}
	return krcore.NewEngine(g, geo.Metric()), g
}

func newTestServer(t *testing.T, b Backend, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, client.New(hs.URL)
}

func TestServerQueryRoundTrip(t *testing.T) {
	eng, g := testEngine(t)
	s, c := newTestServer(t, eng, Config{Dataset: "toy"})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(ctx, 3, 25); err != nil {
		t.Fatal(err)
	}

	want, err := eng.Enumerate(3, 25, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(ctx, 3, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
		t.Fatalf("HTTP enumerate diverged: %v != %v", got.Cores, want.Cores)
	}
	if got.Nodes != want.Nodes {
		t.Fatalf("HTTP node count diverged: %d != %d", got.Nodes, want.Nodes)
	}
	st := want.Summarize()
	if got.Count != st.Count || got.MaxSize != st.MaxSize || got.AvgSize != st.AvgSize {
		t.Fatalf("summary diverged: %+v vs %+v", got, st)
	}

	wantMax, err := eng.FindMaximum(3, 25, krcore.MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotMax, err := c.FindMaximum(ctx, 3, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotMax.Cores) != fmt.Sprint(wantMax.Cores) {
		t.Fatalf("HTTP maximum diverged: %v != %v", gotMax.Cores, wantMax.Cores)
	}

	v := int32(3)
	wantV, err := eng.EnumerateContaining(3, 25, v, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotV, err := c.EnumerateContaining(ctx, 3, 25, v, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotV.Cores) != fmt.Sprint(wantV.Cores) {
		t.Fatalf("HTTP containing diverged: %v != %v", gotV.Cores, wantV.Cores)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != g.N() || stats.M != g.M() || stats.Dataset != "toy" || stats.Dynamic {
		t.Fatalf("bad stats header: %+v", stats)
	}
	if est := eng.Stats(); stats.Engine.Hits != est.Hits || stats.Engine.Misses != est.Misses {
		t.Fatalf("engine stats diverged: %+v vs %+v", stats.Engine, est)
	}
	if stats.Server.Queries != 3 || stats.Server.Rejected != 0 {
		t.Fatalf("server counters: %+v", stats.Server)
	}
	if s.Dynamic() {
		t.Fatal("static engine reported dynamic")
	}
}

func TestServerValidation(t *testing.T) {
	eng, _ := testEngine(t)
	_, c := newTestServer(t, eng, Config{})
	ctx := context.Background()
	cases := []struct {
		name string
		call func() error
	}{
		{"k=0", func() error { _, err := c.Enumerate(ctx, 0, 10, client.Options{}); return err }},
		{"negative nodes", func() error {
			_, err := c.Enumerate(ctx, 2, 10, client.Options{MaxNodes: -1})
			return err
		}},
		{"out-of-range vertex", func() error {
			_, err := c.EnumerateContaining(ctx, 2, 10, 4000, client.Options{})
			return err
		}},
		{"warm k=0", func() error { return c.Warm(ctx, 0, 10) }},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "krcored: 4") {
			t.Errorf("%s: not an API error: %v", tc.name, err)
		}
	}
	// NaN r never reaches the engine: JSON cannot encode it, so the
	// client fails locally; raw bad JSON gets a 400.
	resp, err := http.Post(srvURL(t, eng)+api.PathEnumerate, "application/json", strings.NewReader(`{"k":2,"r":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON got %d", resp.StatusCode)
	}
	// Unknown endpoint and wrong method 404/405.
	resp2, err := http.Get(srvURL(t, eng) + "/v1/enumerate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("GET on a POST endpoint succeeded")
	}
}

// srvURL spins one extra throwaway server (some subtests need a raw
// URL rather than a client).
func srvURL(t *testing.T, b Backend) string {
	t.Helper()
	s, err := New(b, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// blockingBackend parks every query until released, so tests can fill
// the admission slots deterministically.
type blockingBackend struct {
	*krcore.Engine
	release chan struct{}
	entered chan struct{}
}

func (b *blockingBackend) EnumerateContext(ctx context.Context, k int, r float64, opt krcore.EnumOptions) (*krcore.Result, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.Engine.EnumerateContext(ctx, k, r, opt)
}

func TestServerAdmissionControl(t *testing.T) {
	eng, _ := testEngine(t)
	if err := eng.Warm(3, 25); err != nil {
		t.Fatal(err)
	}
	bb := &blockingBackend{
		Engine:  eng,
		release: make(chan struct{}),
		entered: make(chan struct{}, 16),
	}
	s, c := newTestServer(t, bb, Config{
		MaxConcurrent: 2,
		MaxQueue:      1,
		QueueWait:     100 * time.Millisecond,
	})
	ctx := context.Background()

	// Fill both slots with blocked searches.
	var wg sync.WaitGroup
	results := make(chan error, 3)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Enumerate(ctx, 3, 25, client.Options{})
			results <- err
		}()
	}
	<-bb.entered
	<-bb.entered

	// The third request queues (queue capacity 1) and times out after
	// QueueWait with 429; it never reaches the backend.
	_, err := c.Enumerate(ctx, 3, 25, client.Options{})
	if !client.IsBusy(err) {
		t.Fatalf("queued request did not get 429: %v", err)
	}

	// With the queue drained, a fourth immediate request has the queue
	// to itself, waits, and is also rejected after QueueWait.
	_, err = c.Enumerate(ctx, 3, 25, client.Options{})
	if !client.IsBusy(err) {
		t.Fatalf("second queued request did not get 429: %v", err)
	}

	close(bb.release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.ServerStats()
	if st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2: %+v", st.Rejected, st)
	}
	if st.PeakInFlight > 2 {
		t.Fatalf("peak in-flight %d exceeded the limit 2", st.PeakInFlight)
	}
	if st.Queries != 2 {
		t.Fatalf("queries = %d, want 2", st.Queries)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge did not return to 0: %+v", st)
	}
}

func TestServerRequestDeadline(t *testing.T) {
	eng, _ := testEngine(t)
	_, c := newTestServer(t, eng, Config{})
	// A 1ms budget cannot finish a cold query; the daemon reports a
	// truncated result rather than an error, mirroring Limits.
	res, err := c.Enumerate(context.Background(), 3, 25, client.Options{Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("machine fast enough to finish within 1ms; nothing to assert")
	}
}

// TestServerHugeTimeoutClamped regresses the timeout_ms overflow: a
// raw request deadline large enough that ms-to-nanoseconds conversion
// would overflow time.Duration must clamp to MaxTimeout, not wrap
// negative and abort the search instantly. (The Go client cannot
// produce such a value — its Timeout is already a Duration — so the
// test speaks raw JSON like a non-Go client would.)
func TestServerHugeTimeoutClamped(t *testing.T) {
	eng, _ := testEngine(t)
	url := srvURL(t, eng)
	resp, err := http.Post(url+api.PathEnumerate, "application/json",
		strings.NewReader(`{"k":3,"r":25,"timeout_ms":10000000000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var q api.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.TimedOut {
		t.Fatalf("huge timeout_ms wrapped negative and aborted the search: %+v", q)
	}
	if len(q.Cores) == 0 {
		t.Fatal("no cores returned")
	}
}

func TestServerMaxNodesClamp(t *testing.T) {
	eng, _ := testEngine(t)
	_, c := newTestServer(t, eng, Config{MaxNodes: 1})
	// The server clamp caps even requests that ask for more.
	res, err := c.Enumerate(context.Background(), 3, 25, client.Options{MaxNodes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 1 {
		t.Fatalf("node clamp ignored: %d nodes", res.Nodes)
	}
}

func TestServerDynamicUpdates(t *testing.T) {
	const n = 30
	b := krcore.NewGraphBuilder(n)
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	geo := krcore.NewGeoAttributes(n)
	for u := int32(0); u < n; u++ {
		geo.Set(u, float64(u), 0)
	}
	deng, err := krcore.NewDynamicEngine(g, geo)
	if err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, deng, Config{})
	ctx := context.Background()
	if !s.Dynamic() {
		t.Fatal("dynamic engine not detected")
	}

	resp, err := c.ApplyBatch(ctx, []krcore.Update{
		krcore.AddEdgeUpdate(10, 11),
		krcore.AddEdgeUpdate(11, 12),
		krcore.SetAttributesUpdate(10, krcore.VertexAttributes{X: 1, Y: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 3 || resp.M != g.M()+2 || resp.Version != 1 {
		t.Fatalf("bad update ack: %+v", resp)
	}

	// An invalid op rejects the whole batch atomically; the error names
	// the offender and the graph is unchanged.
	before := deng.M()
	_, err = c.ApplyBatch(ctx, []krcore.Update{
		krcore.AddEdgeUpdate(1, 2),
		krcore.AddEdgeUpdate(0, 9999),
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if !strings.Contains(err.Error(), "update 1") || !strings.Contains(err.Error(), "batch discarded") {
		t.Fatalf("rejection does not name the offender: %v", err)
	}
	if deng.M() != before {
		t.Fatal("rejected batch partially committed")
	}

	// Queries serve the mutated snapshot; stats reports dynamic state.
	want, err := deng.Enumerate(2, 5, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(ctx, 2, 5, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
		t.Fatalf("dynamic HTTP enumerate diverged: %v != %v", got.Cores, want.Cores)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Dynamic || stats.DynamicEngine == nil {
		t.Fatalf("stats missing dynamic section: %+v", stats)
	}
	if stats.DynamicEngine.Updates != 3 || stats.Server.UpdatesApplied != 3 {
		t.Fatalf("update counters: %+v / %+v", stats.DynamicEngine, stats.Server)
	}

	// A static server has no update endpoint at all.
	eng, _ := testEngine(t)
	_, cs := newTestServer(t, eng, Config{})
	if _, err := cs.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(0, 1)}); err == nil {
		t.Fatal("static daemon accepted an update")
	}
}

func TestServerNilBackend(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil backend accepted")
	}
}
