package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"krcore"
	"krcore/client"
	"krcore/internal/dataset"
	"krcore/internal/updates"
)

// diffGrid is the (k,r) grid swept per preset: the preset's default
// distance threshold and a looser one, across three engagement levels.
var diffGrid = []struct {
	k int
	r float64
}{
	{4, 10}, {5, 10}, {6, 10}, {4, 25}, {5, 25},
}

// diffPresets are the bundled datasets the differential acceptance
// criterion runs on (geo presets: thresholds need no permille
// calibration, so the test stays fast).
var diffPresets = []string{"brightkite", "gowalla"}

// TestServerDifferentialStatic asserts the acceptance criterion of the
// serving daemon: for every grid setting on the bundled datasets,
// responses served over HTTP are bit-identical — same cores, same node
// counts — to in-process Engine results.
func TestServerDifferentialStatic(t *testing.T) {
	for _, name := range diffPresets {
		t.Run(name, func(t *testing.T) {
			d, err := dataset.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			served := krcore.NewEngine(d.Graph, d.Metric())
			local := krcore.NewEngine(d.Graph, d.Metric())
			s, err := New(served, Config{Dataset: name})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(s.Handler())
			defer hs.Close()
			c := client.New(hs.URL)
			assertGridIdentical(t, c, local)
		})
	}
}

// TestServerDifferentialDynamic extends the criterion to the dynamic
// path: after the same update stream is replayed through HTTP batches
// and through the in-process engine, every grid setting still answers
// bit-identically — and both agree with a from-scratch engine on the
// mutated graph.
func TestServerDifferentialDynamic(t *testing.T) {
	for _, name := range diffPresets {
		t.Run(name, func(t *testing.T) {
			mkDynamic := func() (*krcore.DynamicEngine, krcore.DynamicAttributes) {
				d, err := dataset.Load(name)
				if err != nil {
					t.Fatal(err)
				}
				attrs, err := updates.Attrs(d)
				if err != nil {
					t.Fatal(err)
				}
				deng, err := krcore.NewDynamicEngine(d.Graph, attrs)
				if err != nil {
					t.Fatal(err)
				}
				if err := deng.Warm(diffGrid[0].k, diffGrid[0].r); err != nil {
					t.Fatal(err)
				}
				return deng, attrs
			}
			served, _ := mkDynamic()
			local, localAttrs := mkDynamic()
			s, err := New(served, Config{Dataset: name})
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(s.Handler())
			defer hs.Close()
			c := client.New(hs.URL)

			// One more private dataset copy generates the stream (its
			// engines must not mutate the replayed copies' stores).
			dsrc, err := dataset.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			ups := updates.Random(dsrc, 120, 7)
			const batch = 8
			ctx := context.Background()
			for off := 0; off < len(ups); off += batch {
				end := min(off+batch, len(ups))
				if _, err := c.ApplyBatch(ctx, ups[off:end]); err != nil {
					t.Fatalf("HTTP batch at %d: %v", off, err)
				}
				if err := local.ApplyBatch(ups[off:end]); err != nil {
					t.Fatalf("local batch at %d: %v", off, err)
				}
			}
			if served.N() != local.N() || served.M() != local.M() {
				t.Fatalf("graphs diverged: served %d/%d, local %d/%d",
					served.N(), served.M(), local.N(), local.M())
			}
			assertGridIdentical(t, c, local)

			// Both must also equal a cold engine over the mutated graph
			// (the dynamic engine's core guarantee, checked end to end
			// through the HTTP path).
			fresh := krcore.NewEngine(local.Graph(), localAttrs.Metric())
			assertGridIdentical(t, c, fresh)
		})
	}
}

// queryBackend is the read-only surface shared by Engine and
// DynamicEngine that the grid comparison needs.
type queryBackend interface {
	Enumerate(k int, r float64, opt krcore.EnumOptions) (*krcore.Result, error)
	FindMaximum(k int, r float64, opt krcore.MaxOptions) (*krcore.Result, error)
	Graph() *krcore.Graph
}

// assertGridIdentical sweeps the grid and compares the HTTP answers
// with the in-process backend's, field by field.
func assertGridIdentical(t *testing.T, c *client.Client, local queryBackend) {
	t.Helper()
	ctx := context.Background()
	for _, cell := range diffGrid {
		want, err := local.Enumerate(cell.k, cell.r, krcore.EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Enumerate(ctx, cell.k, cell.r, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
			t.Fatalf("(k=%d, r=%g): HTTP cores != in-process cores", cell.k, cell.r)
		}
		if got.Nodes != want.Nodes {
			t.Fatalf("(k=%d, r=%g): HTTP nodes %d != in-process %d", cell.k, cell.r, got.Nodes, want.Nodes)
		}
		ws := want.Summarize()
		if got.Count != ws.Count || got.MaxSize != ws.MaxSize || got.AvgSize != ws.AvgSize {
			t.Fatalf("(k=%d, r=%g): summary diverged", cell.k, cell.r)
		}

		wantMax, err := local.FindMaximum(cell.k, cell.r, krcore.MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotMax, err := c.FindMaximum(ctx, cell.k, cell.r, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(gotMax.Cores) != fmt.Sprint(wantMax.Cores) || gotMax.Nodes != wantMax.Nodes {
			t.Fatalf("(k=%d, r=%g): HTTP maximum diverged", cell.k, cell.r)
		}

		// Community search for a vertex of the largest core (when any);
		// the expected answer is the v-containing subset of the full
		// enumeration already in hand.
		if len(want.Cores) > 0 {
			v := want.Cores[0][0]
			var subset [][]int32
			for _, core := range want.Cores {
				for _, u := range core {
					if u == v {
						subset = append(subset, core)
						break
					}
				}
			}
			gotV, err := c.EnumerateContaining(ctx, cell.k, cell.r, v, client.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(gotV.Cores) != fmt.Sprint(subset) {
				t.Fatalf("(k=%d, r=%g, v=%d): HTTP containing diverged", cell.k, cell.r, v)
			}
		}
	}
}
