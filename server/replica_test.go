package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"krcore"
	"krcore/api"
	"krcore/client"
	"krcore/internal/dataset"
	"krcore/internal/updates"
	"krcore/replica"
)

// ---------------------------------------------------------------------------
// Fleet fixtures: a leader daemon (dynamic engine + write-ahead journal
// + replication endpoints) and follower daemons (replica.Follower
// mounted as a read-only server backend), all over real HTTP.
// ---------------------------------------------------------------------------

type leaderNode struct {
	deng *krcore.DynamicEngine
	j    *updates.Journal
	srv  *Server
	hs   *httptest.Server
	c    *client.Client
}

// startLeaderOn wires a dynamic engine into a full leader daemon:
// write-ahead journal, snapshot and journal-streaming endpoints.
func startLeaderOn(t *testing.T, deng *krcore.DynamicEngine) *leaderNode {
	t.Helper()
	j := attachJournal(t, deng)
	s, err := New(deng, Config{
		Snapshot:   deng.SaveSnapshot,
		Tail:       j,
		JournalLen: j.TailOps,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return &leaderNode{deng: deng, j: j, srv: s, hs: hs, c: client.New(hs.URL)}
}

type followerNode struct {
	fol    *replica.Follower
	j      *updates.Journal
	srv    *Server
	hs     *httptest.Server
	c      *client.Client
	cancel context.CancelFunc
	done   chan struct{}
}

// startFollowerNode bootstraps a follower from the leader at the given
// URL, starts its tail loop, and serves it as a read-only daemon with
// the leader redirect, lag hook and promotion hook wired exactly as
// cmd/krcored does.
func startFollowerNode(t *testing.T, leaderURL string, pollMax int) *followerNode {
	t.Helper()
	// The follower learns the leader's kind before opening its journal,
	// like krcored's -follow path.
	st, err := client.New(leaderURL).Replication(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kind, err := updates.ParseKind(st.Kind)
	if err != nil {
		t.Fatal(err)
	}
	j, err := updates.OpenJournal(filepath.Join(t.TempDir(), "follower.journal"), kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })

	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader:   leaderURL,
		Journal:  j,
		PollWait: 100 * time.Millisecond,
		PollMax:  pollMax,
		Backoff:  15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := fol.Bootstrap(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		fol.Run(ctx)
	}()

	s, err := New(fol, Config{
		LeaderURL:  leaderURL,
		Lag:        fol.Lag,
		OnPromote:  fol.Stop,
		Snapshot:   fol.SaveSnapshot,
		Tail:       j,
		JournalLen: j.TailOps,
	})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("follower tail loop did not exit")
		}
		hs.Close()
	})
	return &followerNode{fol: fol, j: j, srv: s, hs: hs, c: client.New(hs.URL), cancel: cancel, done: done}
}

// waitOffset polls until get() reaches want — how the harness
// checkpoints "every acked operation arrived".
func waitOffset(t *testing.T, what string, get func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for get() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at offset %d, want %d", what, get(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Deterministic concurrent write plans. Each writer owns a disjoint
// vertex range of the seed graph, so its operations stay valid no
// matter how the engine's group commit interleaves the writers — every
// batch must be accepted, which lets the harness assert zero
// rejections while still exercising genuinely concurrent ApplyBatch.
// ---------------------------------------------------------------------------

type writerPlan struct {
	edges   [][2]int32
	removed []int // indices into edges currently absent from the graph
}

// newWriterPlan harvests up to max seed-graph edges with both
// endpoints in [lo, hi).
func newWriterPlan(g *krcore.Graph, lo, hi int32, max int) *writerPlan {
	p := &writerPlan{}
	for u := lo; u < hi && len(p.edges) < max; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u && v < hi {
				p.edges = append(p.edges, [2]int32{u, v})
				if len(p.edges) == max {
					break
				}
			}
		}
	}
	return p
}

// phaseOps emits the writer's operations for one phase: re-add
// everything left removed by the previous phase, then churn every
// owned edge (remove, and re-add all but every third), nudge vertex
// attributes, and grow the graph by a vertex. Sequentially valid by
// construction; concurrently valid because ranges are disjoint.
func (p *writerPlan) phaseOps(phase int) []krcore.Update {
	var ops []krcore.Update
	for _, i := range p.removed {
		ops = append(ops, krcore.AddEdgeUpdate(p.edges[i][0], p.edges[i][1]))
	}
	p.removed = p.removed[:0]
	for i, e := range p.edges {
		ops = append(ops, krcore.RemoveEdgeUpdate(e[0], e[1]))
		if i%3 == phase%3 {
			p.removed = append(p.removed, i)
		} else {
			ops = append(ops, krcore.AddEdgeUpdate(e[0], e[1]))
		}
		if i%2 == 0 {
			ops = append(ops, krcore.SetAttributesUpdate(e[0], krcore.VertexAttributes{
				X: float64(phase*10 + i),
				Y: float64(e[1] % 50),
			}))
		}
	}
	return append(ops, krcore.AddVertexUpdate())
}

// ---------------------------------------------------------------------------
// Satellite 1: the differential replica harness. A leader and two
// followers over real HTTP; concurrent writers interleaved with
// follower reads; at every checkpoint each follower must be
// bit-identical — cores AND node counts — to one in-process
// DynamicEngine that replays the leader's journal in commit order.
// Run under -race in CI.
// ---------------------------------------------------------------------------

func TestReplicaDifferentialHarness(t *testing.T) {
	const name = "brightkite"
	d, err := dataset.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := updates.Attrs(d)
	if err != nil {
		t.Fatal(err)
	}
	deng, err := krcore.NewDynamicEngine(d.Graph, attrs)
	if err != nil {
		t.Fatal(err)
	}
	leader := startLeaderOn(t, deng)

	// The in-process reference: a second engine over the same seed that
	// replays the leader's journal in the exact order commits happened.
	// Concurrent batches commit in a nondeterministic order, so the
	// journal — not the writers' plans — is the ground truth.
	dref, err := dataset.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	refAttrs, err := updates.Attrs(dref)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := krcore.NewDynamicEngine(dref.Graph, refAttrs)
	if err != nil {
		t.Fatal(err)
	}
	var refApplied int64

	f1 := startFollowerNode(t, leader.hs.URL, 0)
	f2 := startFollowerNode(t, leader.hs.URL, 11) // tiny poll cap: many polls per phase

	const writers = 3
	plans := make([]*writerPlan, writers)
	for w := range plans {
		lo := int32(w * 400)
		plans[w] = newWriterPlan(leader.deng.Graph(), lo, lo+400, 8)
		if len(plans[w].edges) < 4 {
			t.Fatalf("writer %d harvested only %d edges", w, len(plans[w].edges))
		}
	}

	for phase := 0; phase < 3; phase++ {
		var wg sync.WaitGroup
		for w, plan := range plans {
			ops := plan.phaseOps(phase)
			wg.Add(1)
			go func(w int, ops []krcore.Update) {
				defer wg.Done()
				ctx := context.Background()
				for off := 0; off < len(ops); off += 7 {
					end := min(off+7, len(ops))
					// Disjoint ranges make every batch valid regardless of
					// interleaving: any rejection is a replication bug.
					if _, err := leader.c.ApplyBatch(ctx, ops[off:end]); err != nil {
						t.Errorf("writer %d phase %d batch at %d rejected: %v", w, phase, off, err)
						return
					}
				}
			}(w, ops)
		}
		// Reads interleave with the writes: followers must keep serving
		// (possibly stale, never failing) while replication streams.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 8; i++ {
				for _, fc := range []*client.Client{f1.c, f2.c} {
					if _, err := fc.Enumerate(ctx, diffGrid[0].k, diffGrid[0].r, client.Options{}); err != nil {
						t.Errorf("read during replication failed: %v", err)
						return
					}
				}
			}
		}()
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		// Checkpoint: all acked operations are on every follower...
		end := leader.j.End()
		waitOffset(t, "follower 1", f1.fol.JournalOffset, end)
		waitOffset(t, "follower 2", f2.fol.JournalOffset, end)

		// ...the reference replays the journal in commit order...
		ops, newEnd, err := leader.j.ReadFrom(refApplied, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := updates.Replay(ref, ops, 64); err != nil {
			t.Fatalf("reference replay at offset %d: %v", refApplied, err)
		}
		refApplied = newEnd

		// ...and every serving surface is bit-identical to it. The full
		// grid sweep is expensive under -race, so intermediate
		// checkpoints verify graph shape plus two grid cells and the
		// final checkpoint sweeps the whole grid on every node.
		final := phase == 2
		if leader.deng.N() != ref.N() || leader.deng.M() != ref.M() {
			t.Fatalf("phase %d: leader graph %d/%d, reference %d/%d",
				phase, leader.deng.N(), leader.deng.M(), ref.N(), ref.M())
		}
		for i, node := range []*followerNode{f1, f2} {
			eng := node.fol.Engine()
			if eng.N() != ref.N() || eng.M() != ref.M() {
				t.Fatalf("phase %d: follower %d graph %d/%d, reference %d/%d",
					phase, i+1, eng.N(), eng.M(), ref.N(), ref.M())
			}
			if final {
				assertGridIdentical(t, node.c, ref)
			} else {
				assertCellIdentical(t, node.c, ref, 4, 10)
				assertCellIdentical(t, node.c, ref, 5, 25)
			}
		}
		if final {
			assertGridIdentical(t, leader.c, ref)
		} else {
			assertCellIdentical(t, leader.c, ref, 4, 10)
		}

		// Mid-test the leader compacts everything already replicated:
		// absolute offsets keep the stream seamless across it (phase 2
		// polls start exactly at the new base).
		if phase == 1 {
			if _, err := leader.j.CompactTo(end); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Exactly-once accounting: each follower applied every operation
	// through the tail loop (it bootstrapped at offset 0) and never
	// needed a divergence re-bootstrap.
	end := leader.j.End()
	for i, node := range []*followerNode{f1, f2} {
		if node.fol.Applied() != end || node.fol.Bootstraps() != 1 {
			t.Fatalf("follower %d applied %d of %d ops across %d bootstraps",
				i+1, node.fol.Applied(), end, node.fol.Bootstraps())
		}
		if node.fol.LastError() != nil {
			t.Fatalf("follower %d saw a replication error: %v", i+1, node.fol.LastError())
		}
	}
}

// ---------------------------------------------------------------------------
// Satellite 2: fault injection. Every journal poll is hit by a
// rotating fault — connection dropped before the response, response
// cut mid-entry after the 200, or delayed — and the follower must
// still converge to the exact leader state with every operation
// applied exactly once.
// ---------------------------------------------------------------------------

// flakyJournal injects faults into PathJournal responses and passes
// everything else (snapshot bootstrap, replication probes) through.
type flakyJournal struct {
	inner               http.Handler
	polls               atomic.Int64
	drops, cuts, delays atomic.Int64
}

func (f *flakyJournal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != api.PathJournal {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.polls.Add(1) % 4 {
	case 1:
		// The connection dies before any response byte.
		f.drops.Add(1)
		panic(http.ErrAbortHandler)
	case 2:
		// The 200 commits, then the body is cut mid-entry: the follower
		// must apply the complete prefix and resume — never the torn line.
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		if len(body) > 3 {
			f.cuts.Add(1)
			w.Write(body[:len(body)-3])
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		w.Write(body)
	case 3:
		f.delays.Add(1)
		time.Sleep(25 * time.Millisecond)
		f.inner.ServeHTTP(w, r)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

func TestFollowerResumesThroughFaults(t *testing.T) {
	leader := startLeaderOn(t, testDynamicEngine(t))
	flaky := &flakyJournal{inner: leader.srv.Handler()}
	fhs := httptest.NewServer(flaky)
	t.Cleanup(fhs.Close)

	// Small poll cap so convergence needs many polls — each fault mode
	// fires repeatedly while the write stream is still in flight.
	fol := startFollowerNode(t, fhs.URL, 5)

	plan := newWriterPlan(leader.deng.Graph(), 0, 40, 10)
	ctx := context.Background()
	for phase := 0; phase < 4; phase++ {
		ops := plan.phaseOps(phase)
		for off := 0; off < len(ops); off += 5 {
			end := min(off+5, len(ops))
			if _, err := leader.c.ApplyBatch(ctx, ops[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	end := leader.j.End()
	waitOffset(t, "faulted follower", fol.fol.JournalOffset, end)

	// Exactly once: the applied count equals the journal end (the
	// follower bootstrapped at offset 0), with no re-bootstrap — a
	// duplicated or skipped operation would either desync the count or
	// reject replay and force one.
	if fol.fol.Applied() != end || fol.fol.Bootstraps() != 1 {
		t.Fatalf("follower applied %d of %d ops across %d bootstraps",
			fol.fol.Applied(), end, fol.fol.Bootstraps())
	}
	// Bit-identical to the leader's own engine, over HTTP.
	if eng := fol.fol.Engine(); eng.N() != leader.deng.N() || eng.M() != leader.deng.M() {
		t.Fatalf("follower graph %d/%d, leader %d/%d", eng.N(), eng.M(), leader.deng.N(), leader.deng.M())
	}
	assertGridIdentical(t, fol.c, leader.deng)

	// The test is vacuous unless every fault mode actually fired. (No
	// error needs to surface on the follower itself: pre-response drops
	// are retried by the HTTP transport, and cut bodies are consumed as
	// truncated prefixes — that transparency is the point.)
	if flaky.drops.Load() == 0 || flaky.cuts.Load() == 0 || flaky.delays.Load() == 0 {
		t.Fatalf("fault rotation incomplete: drops=%d cuts=%d delays=%d",
			flaky.drops.Load(), flaky.cuts.Load(), flaky.delays.Load())
	}
}

// TestJournalTailTruncatedMidEntry pins the client-side contract the
// fault harness relies on: a response cut mid-entry (the connection
// died after the 200) yields the complete prefix with Truncated set —
// not an error, and never the torn final operation.
func TestJournalTailTruncatedMidEntry(t *testing.T) {
	leader := startLeaderOn(t, testDynamicEngine(t))
	if err := leader.deng.ApplyBatch(toggleOps(6)); err != nil {
		t.Fatal(err)
	}
	cut := &flakyJournal{inner: leader.srv.Handler()}
	cut.polls.Store(1) // next poll is mode 2: cut mid-entry
	hs := httptest.NewServer(cut)
	t.Cleanup(hs.Close)

	tl, err := client.New(hs.URL).JournalTail(context.Background(), 0, client.TailOptions{})
	if err != nil {
		t.Fatalf("cut response surfaced as an error: %v", err)
	}
	if !tl.Truncated {
		t.Fatal("cut response not reported truncated")
	}
	if len(tl.Ops) == 0 || len(tl.Ops) >= 6 {
		t.Fatalf("cut response carried %d ops, want a strict non-empty prefix of 6", len(tl.Ops))
	}
	if tl.Next != int64(len(tl.Ops)) {
		t.Fatalf("Next=%d after %d ops from offset 0", tl.Next, len(tl.Ops))
	}
}

// assertCellIdentical compares one (k, r) grid cell between an HTTP
// node and the in-process reference — the cheap checkpoint check.
func assertCellIdentical(t *testing.T, c *client.Client, ref *krcore.DynamicEngine, k int, r float64) {
	t.Helper()
	want, err := ref.Enumerate(k, r, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(context.Background(), k, r, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatalf("(k=%d, r=%g): HTTP answer diverged from the reference replay", k, r)
	}
}
