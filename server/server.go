// Package server implements the HTTP serving layer behind the krcored
// daemon: JSON endpoints for the (k,r)-core queries of krcore.Engine
// and krcore.DynamicEngine, with the production plumbing the in-process
// engines leave to the caller — per-request deadlines and node budgets
// mapped onto Limits and context cancellation, an admission-control
// semaphore bounding concurrent searches (excess requests queue
// briefly, then 429), and a full metrics pipeline: per-endpoint and
// per-stage latency histograms, admission-queue gauges, cache and
// write-path counters, all exported in Prometheus text format at GET
// /metrics (see Metrics for the registry).
//
// Error accounting splits blame: client_errors (bad JSON, invalid
// parameters, cancelled-while-queued 408s) versus server_errors
// (engine faults such as a failed write-ahead journal append, served
// as 5xx) — so an error-rate alert on server_errors never fires on a
// client's typo. Admission-control rejections (429) stay their own
// series.
//
// The package serves an http.Handler; listener lifecycle and graceful
// shutdown belong to the embedding process (see cmd/krcored, which
// drains in-flight queries on SIGTERM via http.Server.Shutdown).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"krcore"
	"krcore/api"
	"krcore/internal/metrics"
)

// Backend is the query surface a server fronts. krcore.Engine and
// krcore.DynamicEngine both implement it.
type Backend interface {
	EnumerateContext(ctx context.Context, k int, r float64, opt krcore.EnumOptions) (*krcore.Result, error)
	EnumerateContainingContext(ctx context.Context, k int, r float64, v int32, opt krcore.EnumOptions) (*krcore.Result, error)
	FindMaximumContext(ctx context.Context, k int, r float64, opt krcore.MaxOptions) (*krcore.Result, error)
	Warm(k int, r float64) error
	Stats() krcore.EngineStats
	Graph() *krcore.Graph
}

// Updater is the optional mutation surface: when the backend also
// implements it (krcore.DynamicEngine does), the server exposes the
// batch update endpoint.
type Updater interface {
	ApplyBatch(batch []krcore.Update) error
	DynamicStats() krcore.DynamicStats
}

// settingsStatser is the optional per-(k,r) cache-traffic surface;
// both engine flavours implement it. Backends that do get per-setting
// hit/miss series on /metrics.
type settingsStatser interface {
	SettingsStats() []krcore.SettingStats
}

// Config parameterises a Server. The zero value of every field has a
// serviceable default.
type Config struct {
	// Dataset names the served dataset in PathStats (cosmetic).
	Dataset string

	// MaxConcurrent bounds the searches running at once; further
	// requests wait in the admission queue. Default 4.
	MaxConcurrent int
	// MaxQueue bounds the requests waiting for a search slot; beyond
	// it requests are rejected immediately with 429. Default 64.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before a 429. Default 10s.
	QueueWait time.Duration

	// DefaultTimeout is the per-request search deadline applied when a
	// request carries none. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request deadline. Default 2m.
	MaxTimeout time.Duration
	// MaxNodes, when > 0, clamps the per-request node budget; requests
	// carrying none then run under exactly this cap.
	MaxNodes int64
	// MaxParallelism clamps per-request worker counts. Default 8.
	MaxParallelism int

	// JournalLen, when set, reports the operation count of the daemon's
	// update journal tail for PathStats and the journal_tail_ops gauge
	// (see cmd/krcored -journal).
	JournalLen func() int64

	// Snapshot, when set, enables GET PathSnapshot: the hook streams one
	// complete engine snapshot (krsnap format, journal offset embedded).
	// Typically DynamicEngine.SaveSnapshot.
	Snapshot func(w io.Writer) error
	// Tail, when set, enables GET PathJournal serving the committed
	// journal tail (typically the daemon's *updates.Journal).
	Tail TailSource
	// LeaderURL, when non-empty, starts the server as a read-only
	// follower of the leader at that base URL: writes answer 503 with
	// the leader in the error body until PathPromote flips the node
	// writable.
	LeaderURL string
	// Lag, when set, reports the follower's last observed distance
	// behind its leader in operations (PathReplication and the
	// replication_lag_ops gauge).
	Lag func() int64
	// OnPromote, when set, runs inside POST PathPromote before the node
	// starts accepting writes — a follower stops tailing its old leader
	// here. An error aborts the promotion.
	OnPromote func(ctx context.Context) error
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 8
	}
	return c
}

// Server serves one backend over HTTP. Create with New, mount via
// Handler.
type Server struct {
	cfg     Config
	backend Backend
	updater Updater // nil on static engines
	mux     *http.ServeMux

	slots    chan struct{}
	waiters  atomic.Int64
	inFlight atomic.Int64
	peak     atomic.Int64

	// readOnly gates writes while the node follows a leader.
	readOnly atomic.Bool
	// promoteMu's contract IS serialising the promotion side effects:
	// OnPromote (which blocks until the follower's tail loop drains)
	// must finish before the gate opens, and concurrent promotions must
	// run it exactly once. krlint:iolock
	promoteMu sync.Mutex

	reg        *metrics.Registry
	queries    *metrics.Counter
	rejected   *metrics.Counter
	clientErrs *metrics.Counter
	serverErrs *metrics.Counter
	applied    *metrics.Counter
	redirected *metrics.Counter
	writeFails *metrics.CounterVec // cause: disconnect | encode

	reqSeconds    *metrics.HistogramVec // endpoint
	searchSeconds *metrics.HistogramVec // endpoint
	admissionWait *metrics.Histogram

	commitBatches *metrics.Histogram
	commitOps     *metrics.Histogram
	journalOps    *metrics.Counter
	journalWrite  *metrics.Histogram
}

// New returns a server fronting the backend. If the backend also
// implements Updater (krcore.DynamicEngine), the update endpoint is
// enabled.
func New(b Backend, cfg Config) (*Server, error) {
	if b == nil {
		return nil, errors.New("server: nil backend")
	}
	s := &Server{cfg: cfg.withDefaults(), backend: b}
	s.updater, _ = b.(Updater)
	if s.cfg.LeaderURL != "" {
		if s.updater == nil {
			return nil, errors.New("server: a follower needs a dynamic backend to apply the tail")
		}
		s.readOnly.Store(true)
	}
	s.slots = make(chan struct{}, s.cfg.MaxConcurrent)
	s.initMetrics()
	s.mux = http.NewServeMux()
	s.handle("GET "+api.PathHealth, "health", s.handleHealth)
	s.handle("GET "+api.PathStats, "stats", s.handleStats)
	s.handle("GET "+api.PathMetrics, "metrics", s.handleMetrics)
	s.handle("GET "+api.PathReplication, "replication", s.handleReplication)
	s.handle("POST "+api.PathEnumerate, "enumerate", s.handleEnumerate)
	s.handle("POST "+api.PathMaximum, "maximum", s.handleMaximum)
	s.handle("POST "+api.PathWarm, "warm", s.handleWarm)
	if s.cfg.Snapshot != nil {
		s.handle("GET "+api.PathSnapshot, "snapshot", s.handleSnapshot)
	}
	if s.cfg.Tail != nil {
		s.handle("GET "+api.PathJournal, "journal", s.handleJournal)
	}
	if s.updater != nil {
		s.handle("POST "+api.PathUpdate, "update", s.handleUpdate)
		s.handle("POST "+api.PathPromote, "promote", s.handlePromote)
	}
	return s, nil
}

// handle mounts one endpoint wrapped in the whole-request latency
// histogram (admission wait, search and response writing included).
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	hist := s.reqSeconds.With(endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Observe(time.Since(t0).Seconds())
	})
}

// initMetrics registers every serving series. Push-style instruments
// measure the request path; pull-style families read engine, queue and
// runtime state at scrape time.
func (s *Server) initMetrics() {
	reg := metrics.NewRegistry()
	s.reg = reg
	lat := metrics.DefLatencyBuckets()

	s.queries = reg.Counter("krcored_queries_total", "search queries answered successfully")
	s.rejected = reg.Counter("krcored_rejected_total", "requests turned away by admission control (429)")
	s.clientErrs = reg.Counter("krcored_client_errors_total", "requests failed by the client: bad JSON, invalid parameters, cancelled while queued")
	s.serverErrs = reg.Counter("krcored_server_errors_total", "requests failed by the server (5xx): engine or journal faults")
	s.applied = reg.Counter("krcored_updates_applied_total", "update operations committed")
	s.writeFails = reg.CounterVec("krcored_response_write_failures_total", "response bodies that failed mid-write after the status was committed, by cause (disconnect: client went away; encode: server-side encoding bug)", "cause")

	s.reqSeconds = reg.HistogramVec("krcored_http_request_seconds", "whole-request latency by endpoint (admission wait included)", lat, "endpoint")
	s.searchSeconds = reg.HistogramVec("krcored_search_seconds", "backend search/warm duration by endpoint (admission excluded)", lat, "endpoint")
	s.admissionWait = reg.Histogram("krcored_admission_wait_seconds", "time admitted requests spent waiting for a search slot", lat)

	s.commitBatches = reg.Histogram("krcored_group_commit_batches", "ApplyBatch calls coalesced per commit round", metrics.ExponentialBuckets(1, 2, 9))
	s.commitOps = reg.Histogram("krcored_group_commit_ops", "update operations per commit round", metrics.ExponentialBuckets(1, 2, 12))
	s.journalOps = reg.Counter("krcored_journal_appended_ops_total", "operations appended to the write-ahead journal")
	s.journalWrite = reg.Histogram("krcored_journal_append_seconds", "write-ahead journal append latency (write + fsync) per commit round", lat)

	gaugeOf := func(name, help string, get func() int64) {
		reg.SampleFunc(name, help, metrics.KindGauge, nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(get())}}
		})
	}
	gaugeOf("krcored_queue_depth", "requests waiting in the admission queue right now", s.waiters.Load)
	gaugeOf("krcored_in_flight", "searches running right now", s.inFlight.Load)
	gaugeOf("krcored_peak_in_flight", "highest concurrent-search count observed", s.peak.Load)
	gaugeOf("krcored_search_slots", "admission-control concurrency limit", func() int64 { return int64(s.cfg.MaxConcurrent) })

	engineOf := func(name, help string, kind metrics.Kind, get func(krcore.EngineStats) float64) {
		reg.SampleFunc(name, help, kind, nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: get(s.backend.Stats())}}
		})
	}
	engineOf("krcored_engine_cache_hits_total", "queries served from fully-prepared cached state", metrics.KindCounter,
		func(st krcore.EngineStats) float64 { return float64(st.Hits) })
	engineOf("krcored_engine_cache_misses_total", "queries that paid preparation latency", metrics.KindCounter,
		func(st krcore.EngineStats) float64 { return float64(st.Misses) })
	engineOf("krcored_engine_thresholds", "distinct r thresholds with cached oracle state", metrics.KindGauge,
		func(st krcore.EngineStats) float64 { return float64(st.Thresholds) })
	engineOf("krcored_engine_prepared", "distinct (k,r) settings with cached candidate components", metrics.KindGauge,
		func(st krcore.EngineStats) float64 { return float64(st.Prepared) })

	if ss, ok := s.backend.(settingsStatser); ok {
		settingOf := func(name, help string, get func(krcore.SettingStats) float64) {
			reg.SampleFunc(name, help, metrics.KindCounter, []string{"k", "r"}, func() []metrics.Sample {
				stats := ss.SettingsStats()
				out := make([]metrics.Sample, 0, len(stats))
				for _, st := range stats {
					out = append(out, metrics.Sample{
						Labels: []string{strconv.Itoa(st.K), strconv.FormatFloat(st.R, 'g', -1, 64)},
						Value:  get(st),
					})
				}
				return out
			})
		}
		settingOf("krcored_engine_setting_hits_total", "cache hits per prepared (k,r) setting",
			func(st krcore.SettingStats) float64 { return float64(st.Hits) })
		settingOf("krcored_engine_setting_misses_total", "cache misses per (k,r) setting",
			func(st krcore.SettingStats) float64 { return float64(st.Misses) })
	}

	if s.updater != nil {
		dynOf := func(name, help string, kind metrics.Kind, get func(krcore.DynamicStats) int64) {
			reg.SampleFunc(name, help, kind, nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(get(s.updater.DynamicStats()))}}
			})
		}
		dynOf("krcored_dynamic_updates_total", "individual update operations accepted", metrics.KindCounter,
			func(st krcore.DynamicStats) int64 { return st.Updates })
		dynOf("krcored_dynamic_batches_total", "ApplyBatch commits", metrics.KindCounter,
			func(st krcore.DynamicStats) int64 { return st.Batches })
		dynOf("krcored_dynamic_group_commits_total", "commit rounds (concurrent batches coalesce)", metrics.KindCounter,
			func(st krcore.DynamicStats) int64 { return st.GroupCommits })
		dynOf("krcored_dynamic_version", "published graph snapshot version", metrics.KindGauge,
			func(st krcore.DynamicStats) int64 { return st.Version })
		dynOf("krcored_dynamic_patches_incremental_total", "cached settings maintained by bounded core repair", metrics.KindCounter,
			func(st krcore.DynamicStats) int64 { return st.PatchesIncremental })
		dynOf("krcored_dynamic_patches_full_total", "cached settings maintained by full recompute fallback", metrics.KindCounter,
			func(st krcore.DynamicStats) int64 { return st.PatchesFull })
	}
	if s.cfg.JournalLen != nil {
		gaugeOf("krcored_journal_tail_ops", "operations in the journal tail (crash-recovery replay cost)", s.cfg.JournalLen)
	}
	s.initReplicationMetrics(gaugeOf)

	reg.SampleFunc("krcored_go_goroutines", "live goroutines in the daemon", metrics.KindGauge, nil, func() []metrics.Sample {
		return []metrics.Sample{{Value: float64(runtime.NumGoroutine())}}
	})
	reg.SampleFunc("krcored_go_memstats", "daemon allocator state by stat (one runtime.ReadMemStats per scrape)", metrics.KindGauge, []string{"stat"}, func() []metrics.Sample {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []metrics.Sample{
			{Labels: []string{"heap_alloc_bytes"}, Value: float64(ms.HeapAlloc)},
			{Labels: []string{"heap_objects"}, Value: float64(ms.HeapObjects)},
			{Labels: []string{"total_alloc_bytes"}, Value: float64(ms.TotalAlloc)},
			{Labels: []string{"sys_bytes"}, Value: float64(ms.Sys)},
			{Labels: []string{"num_gc"}, Value: float64(ms.NumGC)},
			{Labels: []string{"gc_pause_seconds_total"}, Value: float64(ms.PauseTotalNs) / 1e9},
		}
	})
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Dynamic reports whether the server accepts updates.
func (s *Server) Dynamic() bool { return s.updater != nil }

// Metrics returns the server's metric registry — the families behind
// GET /metrics. The embedding daemon may register additional series on
// it before serving.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ObserveGroupCommit records one committed write round's coalescing
// shape. Wire it as the dynamic engine's commit observer
// (krcore.DynamicEngine.SetCommitObserver) to populate the
// group-commit histograms.
func (s *Server) ObserveGroupCommit(ci krcore.CommitInfo) {
	s.commitBatches.Observe(float64(ci.Batches))
	s.commitOps.Observe(float64(ci.Ops))
}

// ObserveJournalAppend records one durable journal append. Wire it as
// the journal's append observer (updates.Journal.SetAppendObserver) to
// populate the journal ops counter and fsync-latency histogram.
func (s *Server) ObserveJournalAppend(ops int, elapsed time.Duration) {
	s.journalOps.Add(int64(ops))
	s.journalWrite.Observe(elapsed.Seconds())
}

// ServerStats snapshots the serving counters.
func (s *Server) ServerStats() api.ServerStats {
	ce, se := s.clientErrs.Value(), s.serverErrs.Value()
	return api.ServerStats{
		Queries:        s.queries.Value(),
		Rejected:       s.rejected.Value(),
		Errors:         ce + se,
		ClientErrors:   ce,
		ServerErrors:   se,
		UpdatesApplied: s.applied.Value(),
		InFlight:       s.inFlight.Load(),
		PeakInFlight:   s.peak.Load(),
		MaxConcurrent:  int64(s.cfg.MaxConcurrent),
	}
}

// errBusy reports an admission-control rejection.
var errBusy = errors.New("server: all search slots busy")

// acquire takes one search slot, waiting in the bounded admission
// queue when none is free. It fails with errBusy when the queue is
// full or the wait exceeds QueueWait, and with ctx.Err() when the
// request is cancelled while queued. Admitted requests record their
// wait in the admission histogram; rejections surface through the
// rejected/client-error counters instead.
func (s *Server) acquire(ctx context.Context) error {
	t0 := time.Now()
	select {
	case s.slots <- struct{}{}:
		s.admissionWait.Observe(time.Since(t0).Seconds())
		return nil
	default:
	}
	if s.waiters.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiters.Add(-1)
		return errBusy
	}
	defer s.waiters.Add(-1)
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		s.admissionWait.Observe(time.Since(t0).Seconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return errBusy
	}
}

// release returns a search slot.
func (s *Server) release() { <-s.slots }

// trackInFlight bumps the in-flight gauge and its observed peak; the
// returned func undoes the bump.
func (s *Server) trackInFlight() func() {
	cur := s.inFlight.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return func() { s.inFlight.Add(-1) }
}

// writeJSON writes one JSON response body. By the time the body
// writes, the status header is committed — a failure here cannot
// change the response, so it is surfaced on the write-failure metric
// instead, split by blame: encoding bugs (a server-side type the
// encoder rejects) versus disconnects (the client stopped reading).
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.writeFails.With(writeFailCause(err)).Inc()
	}
}

// writeFailCause classifies a mid-body response failure: the JSON
// encoder's own error types mean the server tried to serialise
// something unserialisable; anything else is the transport, i.e. the
// client went away.
func writeFailCause(err error) string {
	var ute *json.UnsupportedTypeError
	var uve *json.UnsupportedValueError
	var me *json.MarshalerError
	if errors.As(err, &ute) || errors.As(err, &uve) || errors.As(err, &me) {
		return "encode"
	}
	return "disconnect"
}

// fail writes an error body and counts it: 429s as admission
// rejections, 5xx as server errors, everything else as client errors.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	switch {
	case status == http.StatusTooManyRequests:
		s.rejected.Inc()
	case status >= 500:
		s.serverErrs.Inc()
	default:
		s.clientErrs.Inc()
	}
	s.writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

// decode parses one JSON request body into dst.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	if err := s.reg.WriteText(w); err != nil {
		// Samples were gathered before the first byte was written, so
		// the only failure mode is the transport.
		s.writeFails.With("disconnect").Inc()
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	est := s.backend.Stats()
	g := s.backend.Graph()
	resp := api.StatsResponse{
		Dataset: s.cfg.Dataset,
		N:       g.N(),
		M:       g.M(),
		Dynamic: s.updater != nil,
		Engine: api.EngineStats{
			Hits:       est.Hits,
			Misses:     est.Misses,
			Thresholds: est.Thresholds,
			Prepared:   est.Prepared,
		},
		Server: s.ServerStats(),
	}
	if s.updater != nil {
		ds := s.updater.DynamicStats()
		resp.DynamicEngine = &api.DynamicStats{
			Updates:            ds.Updates,
			Batches:            ds.Batches,
			GroupCommits:       ds.GroupCommits,
			Version:            ds.Version,
			IndexesKept:        ds.IndexesKept,
			IndexesRebuilt:     ds.IndexesRebuilt,
			ComponentsReused:   ds.ComponentsReused,
			ComponentsRebuilt:  ds.ComponentsRebuilt,
			PatchesIncremental: ds.PatchesIncremental,
			PatchesFull:        ds.PatchesFull,
			CoreVisited:        ds.CoreVisited,
		}
		if s.cfg.JournalLen != nil {
			resp.DynamicEngine.JournalOps = s.cfg.JournalLen()
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// validateSetting checks a (k,r) pair — the one rejection policy for
// every endpoint that names a setting (queries and warm alike).
func validateSetting(k int, r float64) error {
	if k < 1 {
		return fmt.Errorf("k must be >= 1, got %d", k)
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return errors.New("r must be a finite number")
	}
	return nil
}

// validateQuery checks the request fields shared by both query kinds.
func validateQuery(q *api.QueryRequest) error {
	if err := validateSetting(q.K, q.R); err != nil {
		return err
	}
	if q.TimeoutMS < 0 || q.MaxNodes < 0 || q.Parallelism < 0 {
		return errors.New("timeout_ms, max_nodes and parallelism must be >= 0")
	}
	return nil
}

// queryContext derives the per-request search context and limits from
// the request fields, clamped to the server's configuration.
func (s *Server) queryContext(r *http.Request, q *api.QueryRequest) (context.Context, context.CancelFunc, krcore.Limits, int) {
	timeout := s.cfg.DefaultTimeout
	if q.TimeoutMS > 0 {
		// Clamp in milliseconds BEFORE converting: a huge timeout_ms
		// would overflow time.Duration's int64 nanoseconds to a
		// negative value and dodge a post-conversion clamp.
		ms := q.TimeoutMS
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	limits := krcore.Limits{MaxNodes: q.MaxNodes}
	if s.cfg.MaxNodes > 0 && (limits.MaxNodes == 0 || limits.MaxNodes > s.cfg.MaxNodes) {
		limits.MaxNodes = s.cfg.MaxNodes
	}
	par := q.Parallelism
	if par > s.cfg.MaxParallelism {
		par = s.cfg.MaxParallelism
	}
	return ctx, cancel, limits, par
}

// admit takes one admission slot for the request, writing the 429/408
// rejection itself when none can be had; the caller must release()
// when admit returns true. One chokepoint for every slot-holding
// endpoint (queries, warms, updates) so the rejection policy cannot
// drift between them.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	err := s.acquire(r.Context())
	switch {
	case err == nil:
		return true
	case errors.Is(err, errBusy):
		s.fail(w, http.StatusTooManyRequests, "all %d search slots busy, queue full or wait exceeded", s.cfg.MaxConcurrent)
	default:
		s.fail(w, http.StatusRequestTimeout, "cancelled while queued: %v", err)
	}
	return false
}

// runQuery applies admission control around fn and renders its result,
// timing the search stage into the per-endpoint histogram.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, endpoint string, fn func() (*krcore.Result, error)) {
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	defer s.trackInFlight()()
	t0 := time.Now()
	res, err := fn()
	s.searchSeconds.With(endpoint).Observe(time.Since(t0).Seconds())
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.queries.Inc()
	st := res.Summarize()
	s.writeJSON(w, http.StatusOK, api.QueryResponse{
		Cores:     res.Cores,
		Count:     st.Count,
		MaxSize:   st.MaxSize,
		AvgSize:   st.AvgSize,
		Nodes:     res.Nodes,
		TimedOut:  res.TimedOut,
		ElapsedUS: res.Elapsed.Microseconds(),
	})
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var q api.QueryRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validateQuery(&q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.runQuery(w, r, "enumerate", func() (*krcore.Result, error) {
		ctx, cancel, limits, par := s.queryContext(r, &q)
		defer cancel()
		opt := krcore.EnumOptions{Limits: limits, Parallelism: par}
		if q.Vertex != nil {
			return s.backend.EnumerateContainingContext(ctx, q.K, q.R, *q.Vertex, opt)
		}
		return s.backend.EnumerateContext(ctx, q.K, q.R, opt)
	})
}

func (s *Server) handleMaximum(w http.ResponseWriter, r *http.Request) {
	var q api.QueryRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validateQuery(&q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.runQuery(w, r, "maximum", func() (*krcore.Result, error) {
		ctx, cancel, limits, par := s.queryContext(r, &q)
		defer cancel()
		return s.backend.FindMaximumContext(ctx, q.K, q.R, krcore.MaxOptions{Limits: limits, Parallelism: par})
	})
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	var q api.WarmRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validateSetting(q.K, q.R); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Warming is preparation work, not search work, but it still
	// occupies a slot so a warm storm cannot starve live queries.
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	t0 := time.Now()
	err := s.backend.Warm(q.K, q.R)
	s.searchSeconds.With("warm").Observe(time.Since(t0).Seconds())
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, api.WarmResponse{Prepared: s.backend.Stats().Prepared})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	// A read-only follower redirects writes before spending any work on
	// them; the body is not even parsed.
	if s.readOnly.Load() {
		s.redirectWrite(w)
		return
	}
	var q api.UpdateRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := make([]krcore.Update, 0, len(q.Updates))
	for i, wu := range q.Updates {
		up, err := wu.ToUpdate()
		if err != nil {
			s.fail(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		batch = append(batch, up)
	}
	// Mutations go through admission control too: an update storm must
	// be sheddable with 429 like any other load. Admitted batches run
	// concurrently on purpose — the engine's group commit coalesces
	// simultaneous ApplyBatch calls into one commit round, so the
	// server must not serialise them. The acked Version is therefore
	// the engine version at ack time: it includes this batch's effects,
	// but concurrent batches may share it or have advanced it.
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	t0 := time.Now()
	err := s.updater.ApplyBatch(batch)
	s.searchSeconds.With("update").Observe(time.Since(t0).Seconds())
	version := s.updater.DynamicStats().Version
	g := s.backend.Graph()
	if err != nil {
		var be *krcore.BatchError
		if errors.As(err, &be) {
			s.fail(w, http.StatusBadRequest, "update %d (%s): %v (batch discarded)", be.Index, be.Op, be.Err)
		} else {
			// Not a validation rejection: the engine itself failed the
			// round — a write-ahead journal append error, typically.
			// That is the server's fault, so it serves (and counts) as
			// a 5xx, keeping client_errors clean for alerting.
			s.fail(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.applied.Add(int64(len(batch)))
	s.writeJSON(w, http.StatusOK, api.UpdateResponse{
		Applied: len(batch),
		Version: version,
		N:       g.N(),
		M:       g.M(),
	})
}
