// Package server implements the HTTP serving layer behind the krcored
// daemon: JSON endpoints for the (k,r)-core queries of krcore.Engine
// and krcore.DynamicEngine, with the production plumbing the in-process
// engines leave to the caller — per-request deadlines and node budgets
// mapped onto Limits and context cancellation, an admission-control
// semaphore bounding concurrent searches (excess requests queue
// briefly, then 429), and expvar-style serving counters.
//
// The package serves an http.Handler; listener lifecycle and graceful
// shutdown belong to the embedding process (see cmd/krcored, which
// drains in-flight queries on SIGTERM via http.Server.Shutdown).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"krcore"
	"krcore/api"
)

// Backend is the query surface a server fronts. krcore.Engine and
// krcore.DynamicEngine both implement it.
type Backend interface {
	EnumerateContext(ctx context.Context, k int, r float64, opt krcore.EnumOptions) (*krcore.Result, error)
	EnumerateContainingContext(ctx context.Context, k int, r float64, v int32, opt krcore.EnumOptions) (*krcore.Result, error)
	FindMaximumContext(ctx context.Context, k int, r float64, opt krcore.MaxOptions) (*krcore.Result, error)
	Warm(k int, r float64) error
	Stats() krcore.EngineStats
	Graph() *krcore.Graph
}

// Updater is the optional mutation surface: when the backend also
// implements it (krcore.DynamicEngine does), the server exposes the
// batch update endpoint.
type Updater interface {
	ApplyBatch(batch []krcore.Update) error
	DynamicStats() krcore.DynamicStats
}

// Config parameterises a Server. The zero value of every field has a
// serviceable default.
type Config struct {
	// Dataset names the served dataset in PathStats (cosmetic).
	Dataset string

	// MaxConcurrent bounds the searches running at once; further
	// requests wait in the admission queue. Default 4.
	MaxConcurrent int
	// MaxQueue bounds the requests waiting for a search slot; beyond
	// it requests are rejected immediately with 429. Default 64.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before a 429. Default 10s.
	QueueWait time.Duration

	// DefaultTimeout is the per-request search deadline applied when a
	// request carries none. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request deadline. Default 2m.
	MaxTimeout time.Duration
	// MaxNodes, when > 0, clamps the per-request node budget; requests
	// carrying none then run under exactly this cap.
	MaxNodes int64
	// MaxParallelism clamps per-request worker counts. Default 8.
	MaxParallelism int

	// JournalLen, when set, reports the operation count of the daemon's
	// update journal tail for PathStats (see cmd/krcored -journal).
	JournalLen func() int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 8
	}
	return c
}

// Server serves one backend over HTTP. Create with New, mount via
// Handler.
type Server struct {
	cfg     Config
	backend Backend
	updater Updater // nil on static engines
	mux     *http.ServeMux

	slots    chan struct{}
	waiters  atomic.Int64
	inFlight atomic.Int64
	peak     atomic.Int64

	queries  atomic.Int64
	rejected atomic.Int64
	errs     atomic.Int64
	applied  atomic.Int64
}

// New returns a server fronting the backend. If the backend also
// implements Updater (krcore.DynamicEngine), the update endpoint is
// enabled.
func New(b Backend, cfg Config) (*Server, error) {
	if b == nil {
		return nil, errors.New("server: nil backend")
	}
	s := &Server{cfg: cfg.withDefaults(), backend: b}
	s.updater, _ = b.(Updater)
	s.slots = make(chan struct{}, s.cfg.MaxConcurrent)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET "+api.PathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+api.PathStats, s.handleStats)
	s.mux.HandleFunc("POST "+api.PathEnumerate, s.handleEnumerate)
	s.mux.HandleFunc("POST "+api.PathMaximum, s.handleMaximum)
	s.mux.HandleFunc("POST "+api.PathWarm, s.handleWarm)
	if s.updater != nil {
		s.mux.HandleFunc("POST "+api.PathUpdate, s.handleUpdate)
	}
	return s, nil
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Dynamic reports whether the server accepts updates.
func (s *Server) Dynamic() bool { return s.updater != nil }

// ServerStats snapshots the serving counters.
func (s *Server) ServerStats() api.ServerStats {
	return api.ServerStats{
		Queries:        s.queries.Load(),
		Rejected:       s.rejected.Load(),
		Errors:         s.errs.Load(),
		UpdatesApplied: s.applied.Load(),
		InFlight:       s.inFlight.Load(),
		PeakInFlight:   s.peak.Load(),
		MaxConcurrent:  int64(s.cfg.MaxConcurrent),
	}
}

// errBusy reports an admission-control rejection.
var errBusy = errors.New("server: all search slots busy")

// acquire takes one search slot, waiting in the bounded admission
// queue when none is free. It fails with errBusy when the queue is
// full or the wait exceeds QueueWait, and with ctx.Err() when the
// request is cancelled while queued.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.waiters.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiters.Add(-1)
		return errBusy
	}
	defer s.waiters.Add(-1)
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return errBusy
	}
}

// release returns a search slot.
func (s *Server) release() { <-s.slots }

// trackInFlight bumps the in-flight gauge and its observed peak; the
// returned func undoes the bump.
func (s *Server) trackInFlight() func() {
	cur := s.inFlight.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return func() { s.inFlight.Add(-1) }
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// fail writes an error body and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	if status == http.StatusTooManyRequests {
		s.rejected.Add(1)
	} else {
		s.errs.Add(1)
	}
	writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

// decode parses one JSON request body into dst.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.HealthResponse{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	est := s.backend.Stats()
	g := s.backend.Graph()
	resp := api.StatsResponse{
		Dataset: s.cfg.Dataset,
		N:       g.N(),
		M:       g.M(),
		Dynamic: s.updater != nil,
		Engine: api.EngineStats{
			Hits:       est.Hits,
			Misses:     est.Misses,
			Thresholds: est.Thresholds,
			Prepared:   est.Prepared,
		},
		Server: s.ServerStats(),
	}
	if s.updater != nil {
		ds := s.updater.DynamicStats()
		resp.DynamicEngine = &api.DynamicStats{
			Updates:            ds.Updates,
			Batches:            ds.Batches,
			GroupCommits:       ds.GroupCommits,
			Version:            ds.Version,
			IndexesKept:        ds.IndexesKept,
			IndexesRebuilt:     ds.IndexesRebuilt,
			ComponentsReused:   ds.ComponentsReused,
			ComponentsRebuilt:  ds.ComponentsRebuilt,
			PatchesIncremental: ds.PatchesIncremental,
			PatchesFull:        ds.PatchesFull,
			CoreVisited:        ds.CoreVisited,
		}
		if s.cfg.JournalLen != nil {
			resp.DynamicEngine.JournalOps = s.cfg.JournalLen()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// validateSetting checks a (k,r) pair — the one rejection policy for
// every endpoint that names a setting (queries and warm alike).
func validateSetting(k int, r float64) error {
	if k < 1 {
		return fmt.Errorf("k must be >= 1, got %d", k)
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return errors.New("r must be a finite number")
	}
	return nil
}

// validateQuery checks the request fields shared by both query kinds.
func validateQuery(q *api.QueryRequest) error {
	if err := validateSetting(q.K, q.R); err != nil {
		return err
	}
	if q.TimeoutMS < 0 || q.MaxNodes < 0 || q.Parallelism < 0 {
		return errors.New("timeout_ms, max_nodes and parallelism must be >= 0")
	}
	return nil
}

// queryContext derives the per-request search context and limits from
// the request fields, clamped to the server's configuration.
func (s *Server) queryContext(r *http.Request, q *api.QueryRequest) (context.Context, context.CancelFunc, krcore.Limits, int) {
	timeout := s.cfg.DefaultTimeout
	if q.TimeoutMS > 0 {
		// Clamp in milliseconds BEFORE converting: a huge timeout_ms
		// would overflow time.Duration's int64 nanoseconds to a
		// negative value and dodge a post-conversion clamp.
		ms := q.TimeoutMS
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	limits := krcore.Limits{MaxNodes: q.MaxNodes}
	if s.cfg.MaxNodes > 0 && (limits.MaxNodes == 0 || limits.MaxNodes > s.cfg.MaxNodes) {
		limits.MaxNodes = s.cfg.MaxNodes
	}
	par := q.Parallelism
	if par > s.cfg.MaxParallelism {
		par = s.cfg.MaxParallelism
	}
	return ctx, cancel, limits, par
}

// admit takes one admission slot for the request, writing the 429/408
// rejection itself when none can be had; the caller must release()
// when admit returns true. One chokepoint for every slot-holding
// endpoint (queries, warms, updates) so the rejection policy cannot
// drift between them.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	err := s.acquire(r.Context())
	switch {
	case err == nil:
		return true
	case errors.Is(err, errBusy):
		s.fail(w, http.StatusTooManyRequests, "all %d search slots busy, queue full or wait exceeded", s.cfg.MaxConcurrent)
	default:
		s.fail(w, http.StatusRequestTimeout, "cancelled while queued: %v", err)
	}
	return false
}

// runQuery applies admission control around fn and renders its result.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, fn func() (*krcore.Result, error)) {
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	defer s.trackInFlight()()
	res, err := fn()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.queries.Add(1)
	st := res.Summarize()
	writeJSON(w, http.StatusOK, api.QueryResponse{
		Cores:     res.Cores,
		Count:     st.Count,
		MaxSize:   st.MaxSize,
		AvgSize:   st.AvgSize,
		Nodes:     res.Nodes,
		TimedOut:  res.TimedOut,
		ElapsedUS: res.Elapsed.Microseconds(),
	})
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var q api.QueryRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validateQuery(&q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.runQuery(w, r, func() (*krcore.Result, error) {
		ctx, cancel, limits, par := s.queryContext(r, &q)
		defer cancel()
		opt := krcore.EnumOptions{Limits: limits, Parallelism: par}
		if q.Vertex != nil {
			return s.backend.EnumerateContainingContext(ctx, q.K, q.R, *q.Vertex, opt)
		}
		return s.backend.EnumerateContext(ctx, q.K, q.R, opt)
	})
}

func (s *Server) handleMaximum(w http.ResponseWriter, r *http.Request) {
	var q api.QueryRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validateQuery(&q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.runQuery(w, r, func() (*krcore.Result, error) {
		ctx, cancel, limits, par := s.queryContext(r, &q)
		defer cancel()
		return s.backend.FindMaximumContext(ctx, q.K, q.R, krcore.MaxOptions{Limits: limits, Parallelism: par})
	})
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	var q api.WarmRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validateSetting(q.K, q.R); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Warming is preparation work, not search work, but it still
	// occupies a slot so a warm storm cannot starve live queries.
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	if err := s.backend.Warm(q.K, q.R); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.WarmResponse{Prepared: s.backend.Stats().Prepared})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var q api.UpdateRequest
	if err := decode(r, &q); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := make([]krcore.Update, 0, len(q.Updates))
	for i, wu := range q.Updates {
		up, err := wu.ToUpdate()
		if err != nil {
			s.fail(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		batch = append(batch, up)
	}
	// Mutations go through admission control too: an update storm must
	// be sheddable with 429 like any other load. Admitted batches run
	// concurrently on purpose — the engine's group commit coalesces
	// simultaneous ApplyBatch calls into one commit round, so the
	// server must not serialise them. The acked Version is therefore
	// the engine version at ack time: it includes this batch's effects,
	// but concurrent batches may share it or have advanced it.
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	err := s.updater.ApplyBatch(batch)
	version := s.updater.DynamicStats().Version
	g := s.backend.Graph()
	if err != nil {
		var be *krcore.BatchError
		if errors.As(err, &be) {
			s.fail(w, http.StatusBadRequest, "update %d (%s): %v (batch discarded)", be.Index, be.Op, be.Err)
		} else {
			s.fail(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.applied.Add(int64(len(batch)))
	writeJSON(w, http.StatusOK, api.UpdateResponse{
		Applied: len(batch),
		Version: version,
		N:       g.N(),
		M:       g.M(),
	})
}
