// Replication endpoints: snapshot shipping, journal streaming, role
// reporting and failover promotion.
//
// The protocol is deliberately small. A follower bootstraps by
// downloading GET /v1/snapshot (the engine's krsnap image, which
// embeds the journal offset it was taken at), then tails
// GET /v1/journal?from=<offset> — a long-poll over the committed
// journal in the internal/updates text wire format, addressed by
// ABSOLUTE operation offset so compactions on the leader are invisible
// to the stream. A follower that falls behind a compaction gets 410
// Gone and starts over from the snapshot. Writes on a read-only
// follower answer 503 with the leader's URL in the error body;
// POST /v1/promote flips the node writable during failover.
package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"krcore"
	"krcore/api"
	"krcore/internal/attr"
	"krcore/internal/updates"
)

// TailSource is the committed-journal surface behind GET PathJournal;
// *updates.Journal implements it. Offsets are absolute operation
// counts since the journal's creation, immune to compaction: ReadFrom
// below the compacted base fails with updates.ErrCompacted rather
// than serving repositioned bytes.
type TailSource interface {
	Kind() attr.Kind
	Base() int64
	End() int64
	ReadFrom(from int64, max int) (ops []krcore.Update, end int64, err error)
	WaitFrom(ctx context.Context, from int64, wait time.Duration) (end int64)
}

// offsetter is the optional applied-offset surface of a backend;
// krcore.DynamicEngine implements it (its journal offset is the count
// of operations folded into the serving state).
type offsetter interface{ JournalOffset() int64 }

// attributeKinder is the optional attribute-kind surface of a backend;
// both engine flavours implement it.
type attributeKinder interface{ AttributeKind() string }

// maxJournalBatch caps the operations returned by one PathJournal
// response, bounding response size; the follower simply polls again
// (HeaderEnd tells it there is more).
const maxJournalBatch = 8192

// Role reports the node's replication role: RoleStatic without a
// dynamic engine, RoleFollower while writes are gated to a leader,
// RoleLeader otherwise.
func (s *Server) Role() string {
	switch {
	case s.updater == nil:
		return api.RoleStatic
	case s.readOnly.Load():
		return api.RoleFollower
	default:
		return api.RoleLeader
	}
}

// appliedOffset reports the backend's journal offset when it has one.
func (s *Server) appliedOffset() (int64, bool) {
	if o, ok := s.backend.(offsetter); ok {
		return o.JournalOffset(), true
	}
	return 0, false
}

// handleSnapshot streams the engine's current snapshot. The krsnap
// image embeds the authoritative journal offset; HeaderOffset carries
// the engine's offset read just before the capture as an advisory
// lower bound.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Snapshot encoding clones engine state and streams a full graph:
	// it occupies a search slot so a bootstrap storm cannot starve
	// queries.
	if !s.admit(w, r) {
		return
	}
	defer s.release()
	w.Header().Set("Content-Type", "application/octet-stream")
	if ak, ok := s.backend.(attributeKinder); ok {
		w.Header().Set(api.HeaderKind, ak.AttributeKind())
	}
	if off, ok := s.appliedOffset(); ok {
		w.Header().Set(api.HeaderOffset, strconv.FormatInt(off, 10))
	}
	if err := s.cfg.Snapshot(w); err != nil {
		// The snapshot encoder only fails on its writer, i.e. the
		// transport: the 200 is committed, so count it like any other
		// mid-body failure.
		s.writeFails.With("disconnect").Inc()
	}
}

// handleJournal serves the committed journal tail from an absolute
// operation offset. Query parameters: from (required, >= 0), wait_ms
// (long-poll up to that long when the offset is at the end, clamped to
// MaxTimeout), max (cap on returned operations, clamped to
// maxJournalBatch). The response body is the internal/updates text
// format; HeaderEnd is the offset to poll from next. Long-polls hold
// no admission slot — they are memory reads that mostly sleep, and
// letting them queue would let idle followers starve searches.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil || from < 0 {
		s.fail(w, http.StatusBadRequest, "journal: bad from offset %q", q.Get("from"))
		return
	}
	maxOps := maxJournalBatch
	if v := q.Get("max"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m < 0 {
			s.fail(w, http.StatusBadRequest, "journal: bad max %q", v)
			return
		}
		if m > 0 && m < maxOps {
			maxOps = m
		}
	}
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.fail(w, http.StatusBadRequest, "journal: bad wait_ms %q", v)
			return
		}
		if maxMS := s.cfg.MaxTimeout.Milliseconds(); ms > maxMS {
			ms = maxMS
		}
		if ms > 0 {
			s.cfg.Tail.WaitFrom(r.Context(), from, time.Duration(ms)*time.Millisecond)
		}
	}
	ops, end, err := s.cfg.Tail.ReadFrom(from, maxOps)
	switch {
	case errors.Is(err, updates.ErrCompacted):
		// The operations below the compaction base are gone for good:
		// 410 tells the follower to re-bootstrap from PathSnapshot
		// instead of retrying.
		s.fail(w, http.StatusGone, "%v", err)
		return
	case err != nil:
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	kind := s.cfg.Tail.Kind()
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set(api.HeaderKind, kind.String())
	h.Set(api.HeaderEnd, strconv.FormatInt(end, 10))
	if err := updates.Write(w, ops, kind); err != nil {
		// Journalled operations always serialise; a failure here is the
		// follower hanging up mid-body.
		s.writeFails.With("disconnect").Inc()
	}
}

// handleReplication reports the node's role and offsets.
func (s *Server) handleReplication(w http.ResponseWriter, _ *http.Request) {
	st := api.ReplicationStatus{Role: s.Role()}
	if st.Role == api.RoleFollower {
		st.Leader = s.cfg.LeaderURL
	}
	if ak, ok := s.backend.(attributeKinder); ok {
		st.Kind = ak.AttributeKind()
	}
	if off, ok := s.appliedOffset(); ok {
		st.AppliedOffset = off
	}
	if t := s.cfg.Tail; t != nil {
		st.JournalBase, st.JournalEnd = t.Base(), t.End()
	}
	if s.cfg.Lag != nil {
		st.LagOps = s.cfg.Lag()
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handlePromote flips a read-only follower writable (failover).
// Idempotent: promoting a node that already accepts writes is a 200.
// The OnPromote hook runs exactly once, before the first write can be
// admitted, so a follower can stop tailing its old leader cleanly.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.readOnly.Load() {
		if s.cfg.OnPromote != nil {
			if err := s.cfg.OnPromote(r.Context()); err != nil {
				s.fail(w, http.StatusInternalServerError, "promote: %v", err)
				return
			}
		}
		s.readOnly.Store(false)
	}
	off, _ := s.appliedOffset()
	s.writeJSON(w, http.StatusOK, api.PromoteResponse{
		Role:          api.RoleLeader,
		AppliedOffset: off,
	})
}

// redirectWrite answers a write on a read-only follower: 503 with the
// leader's URL in the error body. Counted on its own series — neither
// a client nor a server error, so a fleet soak can still gate on zero
// server_errors while routers retry against the leader.
func (s *Server) redirectWrite(w http.ResponseWriter) {
	s.redirected.Inc()
	s.writeJSON(w, http.StatusServiceUnavailable, api.Error{
		Error:  "read-only follower: writes go to the leader",
		Leader: s.cfg.LeaderURL,
	})
}

// initReplicationMetrics registers the replication series; gaugeOf is
// initMetrics' pull-gauge helper.
func (s *Server) initReplicationMetrics(gaugeOf func(name, help string, get func() int64)) {
	s.redirected = s.reg.Counter("krcored_write_redirects_total", "writes answered 503 with a leader redirect (read-only follower)")
	gaugeOf("krcored_replication_writable", "1 when this node accepts writes, 0 on a read-only follower", func() int64 {
		if s.readOnly.Load() {
			return 0
		}
		return 1
	})
	if _, ok := s.backend.(offsetter); ok {
		gaugeOf("krcored_replication_applied_offset", "journal offset folded into the serving state", func() int64 {
			off, _ := s.appliedOffset()
			return off
		})
	}
	if s.cfg.Lag != nil {
		gaugeOf("krcored_replication_lag_ops", "follower operations behind the leader at its last poll", s.cfg.Lag)
	}
	if s.cfg.Tail != nil {
		gaugeOf("krcored_journal_base", "absolute offset of the first replayable journal operation", s.cfg.Tail.Base)
		gaugeOf("krcored_journal_end", "absolute offset past the last committed journal operation", s.cfg.Tail.End)
	}
}
