package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"krcore"
	"krcore/api"
	"krcore/client"
	"krcore/internal/updates"
)

// testDynamicEngine builds a small two-cluster geo instance on a
// dynamic engine — the same shape as testEngine, but mutable.
func testDynamicEngine(t *testing.T) *krcore.DynamicEngine {
	t.Helper()
	const n = 40
	b := krcore.NewGraphBuilder(n)
	for c := 0; c < 2; c++ {
		base := int32(c * 20)
		for i := int32(0); i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if (i+j)%3 != 0 {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	b.AddEdge(19, 20)
	geo := krcore.NewGeoAttributes(n)
	for u := int32(0); u < n; u++ {
		geo.Set(u, float64(u/20)*100, float64(u%20))
	}
	deng, err := krcore.NewDynamicEngine(b.Build(), geo)
	if err != nil {
		t.Fatal(err)
	}
	return deng
}

// attachJournal opens a journal of the engine's kind and wires it as
// the engine's write-ahead log.
func attachJournal(t *testing.T, deng *krcore.DynamicEngine) *updates.Journal {
	t.Helper()
	kind, err := updates.ParseKind(deng.AttributeKind())
	if err != nil {
		t.Fatal(err)
	}
	j, err := updates.OpenJournal(filepath.Join(t.TempDir(), "node.journal"), kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	deng.SetJournal(j)
	return j
}

// toggleOps builds n valid operations against the testDynamicEngine
// graph: each op removes and re-adds a known edge or nudges a vertex
// attribute, so every batch commits.
func toggleOps(n int) []krcore.Update {
	ops := make([]krcore.Update, 0, n)
	for i := 0; len(ops) < n; i++ {
		u := int32(i % 18)
		switch i % 3 {
		case 0:
			// (1,2): 1+2=3 divisible by 3, so this edge does NOT exist in
			// the seed graph — but (1,3) does.
			ops = append(ops, krcore.RemoveEdgeUpdate(1, 3), krcore.AddEdgeUpdate(1, 3))
		case 1:
			ops = append(ops, krcore.SetAttributesUpdate(u, krcore.VertexAttributes{X: float64(i), Y: float64(u)}))
		default:
			ops = append(ops, krcore.AddVertexUpdate())
		}
	}
	return ops[:n]
}

// TestSnapshotEndpoint pins the bootstrap path: the downloaded image
// loads into an engine bit-identical to the leader's, carrying its
// journal offset, and the headers describe the stream.
func TestSnapshotEndpoint(t *testing.T) {
	deng := testDynamicEngine(t)
	j := attachJournal(t, deng)
	if err := deng.ApplyBatch(toggleOps(9)); err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, deng, Config{Snapshot: deng.SaveSnapshot, Tail: j})

	rc, info, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "geo" {
		t.Fatalf("snapshot kind %q, want geo", info.Kind)
	}
	if info.Offset != deng.JournalOffset() {
		t.Fatalf("advisory offset %d, want %d", info.Offset, deng.JournalOffset())
	}
	loaded, err := krcore.LoadDynamicEngine(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if loaded.JournalOffset() != deng.JournalOffset() {
		t.Fatalf("loaded offset %d, want %d", loaded.JournalOffset(), deng.JournalOffset())
	}
	if loaded.N() != deng.N() || loaded.M() != deng.M() {
		t.Fatalf("loaded graph %d/%d, want %d/%d", loaded.N(), loaded.M(), deng.N(), deng.M())
	}
}

// TestJournalEndpoint pins the streaming path: absolute offsets, max
// clamping, long-poll wakeup, parameter validation, and the 410
// re-bootstrap signal once the requested offset is compacted away.
func TestJournalEndpoint(t *testing.T) {
	deng := testDynamicEngine(t)
	j := attachJournal(t, deng)
	if err := deng.ApplyBatch(toggleOps(10)); err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, deng, Config{Snapshot: deng.SaveSnapshot, Tail: j})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	ctx := context.Background()

	full, err := c.JournalTail(ctx, 0, client.TailOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Ops) != 10 || full.Next != 10 || full.End != 10 || full.Kind != "geo" || full.Truncated {
		t.Fatalf("full tail: %d ops, next=%d end=%d kind=%q truncated=%v",
			len(full.Ops), full.Next, full.End, full.Kind, full.Truncated)
	}

	capped, err := c.JournalTail(ctx, 4, client.TailOptions{Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Ops) != 3 || capped.Next != 7 || capped.End != 10 {
		t.Fatalf("capped tail: %d ops, next=%d end=%d", len(capped.Ops), capped.Next, capped.End)
	}

	// A long-poll at the end wakes when a commit lands.
	woke := make(chan error, 1)
	go func() {
		tl, err := c.JournalTail(ctx, 10, client.TailOptions{Wait: 5 * time.Second})
		if err == nil && len(tl.Ops) == 0 {
			err = errors.New("long-poll returned empty after the commit")
		}
		woke <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := deng.ApplyBatch(toggleOps(2)[:1]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-woke:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke")
	}

	// Parameter validation: each bad request is a 400, not a hang or a
	// misread stream.
	for _, q := range []string{"", "from=-1", "from=abc", "from=0&max=-2", "from=0&max=x", "from=0&wait_ms=-5", "from=999"} {
		resp, err := http.Get(hs.URL + api.PathJournal + "?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("journal?%s answered %d, want 400", q, resp.StatusCode)
		}
	}

	// Compaction below the requested offset turns the tail into a 410:
	// the typed re-bootstrap signal, not a generic failure.
	if _, err := j.CompactTo(8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.JournalTail(ctx, 2, client.TailOptions{}); !errors.Is(err, client.ErrTailCompacted) {
		t.Fatalf("tail below base returned %v, want ErrTailCompacted", err)
	}
	// At-or-above the base the stream is untouched by the compaction.
	rest, err := c.JournalTail(ctx, 8, client.TailOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest.Ops) != 3 || rest.Next != 11 {
		t.Fatalf("post-compaction tail: %d ops, next=%d", len(rest.Ops), rest.Next)
	}
}

// TestFollowerWriteGateAndPromote pins the follower serving contract:
// writes answer 503 with the leader's URL (counted on their own
// series, not server_errors), the replication status names the role,
// and promotion is idempotent, runs the OnPromote hook exactly once
// before the gate opens, and flips the node writable.
func TestFollowerWriteGateAndPromote(t *testing.T) {
	deng := testDynamicEngine(t)
	var hookCalls atomic.Int64
	const leaderURL = "http://leader.example:7070"
	s, c := newTestServer(t, deng, Config{
		LeaderURL: leaderURL,
		OnPromote: func(context.Context) error { hookCalls.Add(1); return nil },
	})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	ctx := context.Background()

	st, err := c.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != api.RoleFollower || st.Leader != leaderURL || st.Kind != "geo" {
		t.Fatalf("follower status: %+v", st)
	}

	_, err = c.ApplyBatch(ctx, toggleOps(2)[:2])
	if leader, ok := client.IsReadOnly(err); !ok || leader != leaderURL {
		t.Fatalf("gated write returned %v (leader=%q ok=%v)", err, leader, ok)
	}
	// Reads stay open while the node follows.
	if _, err := c.Enumerate(ctx, 4, 10, client.Options{}); err != nil {
		t.Fatal(err)
	}
	assertMetric(t, hs.URL, "krcored_write_redirects_total", 1)
	assertMetric(t, hs.URL, "krcored_server_errors_total", 0)
	assertMetric(t, hs.URL, "krcored_replication_writable", 0)

	pr, err := c.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Role != api.RoleLeader || hookCalls.Load() != 1 {
		t.Fatalf("promote: %+v (hook calls %d)", pr, hookCalls.Load())
	}
	// Idempotent: a second promote is a 200 and the hook does not rerun.
	if _, err := c.Promote(ctx); err != nil || hookCalls.Load() != 1 {
		t.Fatalf("re-promote: %v (hook calls %d)", err, hookCalls.Load())
	}
	if _, err := c.ApplyBatch(ctx, toggleOps(2)[:2]); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if st, err = c.Replication(ctx); err != nil || st.Role != api.RoleLeader {
		t.Fatalf("post-promotion status %+v (%v)", st, err)
	}
	assertMetric(t, hs.URL, "krcored_replication_writable", 1)
}

// TestPromoteHookFailure: when OnPromote cannot drain the tail loop,
// promotion fails closed — the node stays read-only, and a retry can
// still succeed later.
func TestPromoteHookFailure(t *testing.T) {
	deng := testDynamicEngine(t)
	var hookErr atomic.Pointer[error]
	e := errors.New("tail loop still draining")
	hookErr.Store(&e)
	_, c := newTestServer(t, deng, Config{
		LeaderURL: "http://leader.example:7070",
		OnPromote: func(context.Context) error {
			if p := hookErr.Load(); *p != nil {
				return *p
			}
			return nil
		},
	})
	ctx := context.Background()

	if _, err := c.Promote(ctx); err == nil {
		t.Fatal("promote with a failing hook reported success")
	}
	if _, err := c.ApplyBatch(ctx, toggleOps(1)); err == nil {
		t.Fatal("failed promotion opened the write gate")
	}

	var nilErr error
	hookErr.Store(&nilErr)
	if _, err := c.Promote(ctx); err != nil {
		t.Fatalf("promote retry: %v", err)
	}
	if _, err := c.ApplyBatch(ctx, toggleOps(1)); err != nil {
		t.Fatalf("write after recovered promotion: %v", err)
	}
}

// assertMetric scrapes the node's /metrics and checks one series'
// current value.
func assertMetric(t *testing.T, base, name string, want int64) {
	t.Helper()
	resp, err := http.Get(base + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			if got := strings.TrimSpace(strings.TrimPrefix(line, name)); got != fmt.Sprint(want) {
				t.Fatalf("%s = %s, want %d", name, got, want)
			}
			return
		}
	}
	t.Fatalf("metric %s not exported", name)
}
