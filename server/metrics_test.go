package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"krcore"
	"krcore/client"
	"krcore/internal/metrics"
)

// testDynamic builds a dynamic engine over the same two-cluster geo
// instance as testEngine.
func testDynamic(t *testing.T) *krcore.DynamicEngine {
	t.Helper()
	const n = 40
	b := krcore.NewGraphBuilder(n)
	for c := 0; c < 2; c++ {
		base := int32(c * 20)
		for i := int32(0); i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if (i+j)%3 != 0 {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	geo := krcore.NewGeoAttributes(n)
	for u := int32(0); u < n; u++ {
		geo.Set(u, float64(u/20)*100, float64(u%20))
	}
	d, err := krcore.NewDynamicEngine(b.Build(), geo)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// faultyUpdater wraps a dynamic engine but fails every ApplyBatch with
// a non-BatchError — the shape of a write-ahead journal append failure.
type faultyUpdater struct {
	*krcore.DynamicEngine
}

func (f *faultyUpdater) ApplyBatch([]krcore.Update) error {
	return errors.New("journal append: disk full")
}

// TestErrorCounterSplit is the regression test for splitting the
// lumped errs counter: client faults land in client_errors, engine
// faults in server_errors, admission rejections in neither, and the
// legacy Errors field stays their sum.
func TestErrorCounterSplit(t *testing.T) {
	s, c := newTestServer(t, &faultyUpdater{testDynamic(t)}, Config{})
	ctx := context.Background()

	// Client fault 1: malformed JSON body.
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/v1/enumerate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// Client fault 2: invalid parameters.
	if _, err := c.Enumerate(ctx, 0, 25, client.Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Server fault: the engine fails the batch with a non-validation
	// error; pre-split this was lumped with the client's typos.
	_, err = c.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(0, 1)})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("journal-style fault returned %v, want APIError 500", err)
	}

	st := s.ServerStats()
	if st.ClientErrors != 2 {
		t.Fatalf("ClientErrors = %d, want 2", st.ClientErrors)
	}
	if st.ServerErrors != 1 {
		t.Fatalf("ServerErrors = %d, want 1", st.ServerErrors)
	}
	if st.Errors != st.ClientErrors+st.ServerErrors {
		t.Fatalf("Errors = %d, not the sum %d+%d", st.Errors, st.ClientErrors, st.ServerErrors)
	}
	if st.Rejected != 0 {
		t.Fatalf("Rejected = %d, want 0", st.Rejected)
	}

	// The split must survive the wire format too.
	wire, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Server.ClientErrors != 2 || wire.Server.ServerErrors != 1 || wire.Server.Errors != 3 {
		t.Fatalf("wire stats = %+v, want 2/1/3", wire.Server)
	}
}

// TestRejectionNotAnError pins that a 429 increments Rejected only —
// neither error counter moves.
func TestRejectionNotAnError(t *testing.T) {
	eng, _ := testEngine(t)
	s, _ := newTestServer(t, eng, Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: 10 * time.Millisecond})
	// Occupy the only slot and fill the queue slot so the next request
	// is turned away immediately.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	s.waiters.Add(1)
	defer s.waiters.Add(-1)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/enumerate", strings.NewReader(`{"k":3,"r":25}`))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	st := s.ServerStats()
	if st.Rejected != 1 || st.Errors != 0 || st.ClientErrors != 0 || st.ServerErrors != 0 {
		t.Fatalf("stats after 429 = %+v, want rejected=1 and zero errors", st)
	}
}

// brokenWriter is a ResponseWriter whose connection has gone away:
// every body write fails with a transport error.
type brokenWriter struct {
	h http.Header
}

func (b *brokenWriter) Header() http.Header {
	if b.h == nil {
		b.h = make(http.Header)
	}
	return b.h
}
func (b *brokenWriter) WriteHeader(int) {}
func (b *brokenWriter) Write([]byte) (int, error) {
	return 0, errors.New("write tcp: broken pipe")
}

// TestWriteJSONFailureMetrics checks response-write failures are no
// longer discarded: transport failures count as disconnects, encoder
// rejections as encode bugs, and successes count as neither.
func TestWriteJSONFailureMetrics(t *testing.T) {
	eng, _ := testEngine(t)
	s, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}

	s.writeJSON(&brokenWriter{}, http.StatusOK, map[string]string{"ok": "yes"})
	if got := s.writeFails.With("disconnect").Value(); got != 1 {
		t.Fatalf("disconnect failures = %d, want 1", got)
	}
	if got := s.writeFails.With("encode").Value(); got != 0 {
		t.Fatalf("encode failures = %d, want 0", got)
	}

	// A channel is unserialisable: the encoder itself fails even though
	// the writer is fine — that is a server-side bug, not a disconnect.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]any{"ch": make(chan int)})
	if got := s.writeFails.With("encode").Value(); got != 1 {
		t.Fatalf("encode failures = %d, want 1", got)
	}

	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]string{"ok": "yes"})
	if d, e := s.writeFails.With("disconnect").Value(), s.writeFails.With("encode").Value(); d != 1 || e != 1 {
		t.Fatalf("counters moved on a successful write: disconnect=%d encode=%d", d, e)
	}
}

// TestAdmissionAccountingStress hammers the admission path from many
// goroutines — immediate grabs, queued waits, cancelled contexts and
// timed-out waits all interleaved — then checks the books balance: the
// waiters gauge returns to zero, no slot leaks, in-flight drains, and
// the recorded peak is monotonic and at least the maximum concurrency
// actually observed. Run with -race to check the accounting is also
// data-race-free.
func TestAdmissionAccountingStress(t *testing.T) {
	eng, _ := testEngine(t)
	s, err := New(eng, Config{MaxConcurrent: 3, MaxQueue: 8, QueueWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	const iters = 150
	var maxSeen atomic.Int64
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < iters; n++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(4) {
				case 0: // cancelled while queued
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				case 1: // already dead on arrival
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				}
				err := s.acquire(ctx)
				cancel()
				if err != nil {
					rejected.Add(1)
					continue
				}
				admitted.Add(1)
				done := s.trackInFlight()
				cur := s.inFlight.Load()
				for {
					m := maxSeen.Load()
					if cur <= m || maxSeen.CompareAndSwap(m, cur) {
						break
					}
				}
				if rng.Intn(2) == 0 {
					time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				}
				done()
				s.release()
			}
		}(int64(i))
	}
	wg.Wait()

	if got := s.waiters.Load(); got != 0 {
		t.Errorf("waiters gauge = %d after drain, want 0", got)
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
	if got := len(s.slots); got != 0 {
		t.Errorf("%d search slots leaked", got)
	}
	peak := s.peak.Load()
	if peak < maxSeen.Load() {
		t.Errorf("peak %d below observed concurrency %d", peak, maxSeen.Load())
	}
	if peak > int64(s.cfg.MaxConcurrent) {
		t.Errorf("peak %d exceeds the admission limit %d", peak, s.cfg.MaxConcurrent)
	}
	if admitted.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("stress exercised only one path: admitted=%d rejected=%d", admitted.Load(), rejected.Load())
	}
	// One more acquire must still work: no slot was lost.
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("post-stress acquire failed: %v", err)
	}
	s.release()
}

// TestMetricsEndpoint drives real traffic through the server and
// checks the Prometheus export end to end: content type, well-formed
// families, live query counters, per-endpoint histograms and
// per-setting cache series.
func TestMetricsEndpoint(t *testing.T) {
	eng, _ := testEngine(t)
	s, c := newTestServer(t, eng, Config{Dataset: "toy"})
	ctx := context.Background()

	if err := c.Warm(ctx, 3, 25); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Enumerate(ctx, 3, 25, client.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.FindMaximum(ctx, 3, 25, client.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enumerate(ctx, 0, 25, client.Options{}); err == nil {
		t.Fatal("invalid query accepted")
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.TextContentType)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "# TYPE krcored_queries_total counter") ||
		!strings.Contains(text, "# TYPE krcored_http_request_seconds histogram") {
		t.Fatalf("export missing TYPE headers:\n%s", text)
	}
	samples := client.ParseMetrics(text)
	checks := []struct {
		series string
		want   float64
	}{
		{"krcored_queries_total", 4},
		{"krcored_client_errors_total", 1},
		{"krcored_server_errors_total", 0},
		{`krcored_http_request_seconds_count{endpoint="enumerate"}`, 4},
		{`krcored_search_seconds_count{endpoint="maximum"}`, 1},
		{"krcored_admission_wait_seconds_count", 5},
		{`krcored_engine_setting_hits_total{k="3",r="25"}`, 4},
		{`krcored_engine_setting_misses_total{k="3",r="25"}`, 1},
		{"krcored_search_slots", 4},
		{"krcored_queue_depth", 0},
	}
	for _, ck := range checks {
		got, ok := samples[ck.series]
		if !ok {
			t.Errorf("series %s missing from export", ck.series)
			continue
		}
		if got != ck.want {
			t.Errorf("%s = %v, want %v", ck.series, got, ck.want)
		}
	}
	// Histogram plumbing: the +Inf bucket of the request histogram must
	// agree with its _count.
	inf := samples[`krcored_http_request_seconds_bucket{endpoint="enumerate",le="+Inf"}`]
	if inf != samples[`krcored_http_request_seconds_count{endpoint="enumerate"}`] {
		t.Errorf("+Inf bucket %v disagrees with count", inf)
	}
	if _, ok := samples["krcored_go_goroutines"]; !ok {
		t.Error("runtime gauges missing from export")
	}
}

// TestDynamicMetricsWiring checks the dynamic-only series: update
// counters, group-commit observers routed from the engine, and the
// journal gauge fed by Config.JournalLen.
func TestDynamicMetricsWiring(t *testing.T) {
	d := testDynamic(t)
	var tail atomic.Int64
	s, c := newTestServer(t, d, Config{JournalLen: tail.Load})
	d.SetCommitObserver(s.ObserveGroupCommit)
	ctx := context.Background()

	if _, err := c.ApplyBatch(ctx, []krcore.Update{krcore.AddVertexUpdate()}); err != nil {
		t.Fatal(err)
	}
	s.ObserveJournalAppend(1, 250*time.Microsecond)
	tail.Store(7)

	samples := client.ParseMetrics(mustMetrics(t, c))
	for series, want := range map[string]float64{
		"krcored_updates_applied_total":        1,
		"krcored_dynamic_batches_total":        1,
		"krcored_dynamic_group_commits_total":  1,
		"krcored_group_commit_batches_count":   1,
		"krcored_group_commit_ops_sum":         1,
		"krcored_journal_appended_ops_total":   1,
		"krcored_journal_append_seconds_count": 1,
		"krcored_journal_tail_ops":             7,
	} {
		if got := samples[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

func mustMetrics(t *testing.T, c *client.Client) string {
	t.Helper()
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return text
}

// TestParseMetrics pins the client-side scraper on a hand-written
// export, including labeled series, comments and malformed lines.
func TestParseMetrics(t *testing.T) {
	text := "# HELP x help\n# TYPE x counter\nx 41\n" +
		"h_bucket{le=\"+Inf\"} 3\nh_sum 0.5\n" +
		"bad line with no number trailing\n\n"
	got := client.ParseMetrics(text)
	want := map[string]float64{
		"x":                   41,
		`h_bucket{le="+Inf"}`: 3,
		"h_sum":               0.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	if fmt.Sprint(got["missing"]) != "0" {
		t.Error("missing series should read zero")
	}
}
