package krcore_test

import (
	"fmt"
	"sync"

	"krcore"
)

// memJournal is the smallest JournalAppender: it counts the committed
// operations a durable journal would persist. A commit group's
// operations arrive as one call, so appends (and their fsyncs, in a
// file-backed journal like cmd/krcored's) are amortised across every
// batch that shared the round.
type memJournal struct {
	mu      sync.Mutex
	ops     int
	appends int
}

func (j *memJournal) AppendBatch(batch []krcore.Update) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ops += len(batch)
	j.appends++
	return nil
}

// Example_groupCommit shows the concurrent write path: many writers
// calling ApplyBatch at once coalesce into shared commit rounds — one
// journal append, one snapshot advance per round — while every batch
// keeps its individual atomicity and result. DynamicStats reports the
// achieved coalescing factor as Batches/GroupCommits, and the
// incremental-maintenance counters say how often the cached (k,r)
// settings were repaired in place instead of recomputed.
func Example_groupCommit() {
	// A ring of 64 users in two distant cities.
	const n = 64
	b := krcore.NewGraphBuilder(n)
	for v := int32(0); v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	geo := krcore.NewGeoAttributes(n)
	for v := int32(0); v < n; v++ {
		geo.Set(v, float64(40*(int(v)%2)), float64(v))
	}
	eng, err := krcore.NewDynamicEngine(b.Build(), geo)
	if err != nil {
		panic(err)
	}
	if err := eng.Warm(2, 10); err != nil {
		panic(err)
	}
	j := &memJournal{}
	eng.SetJournal(j) // attach before accepting writes

	// 8 writers, 4 one-op batches each, on writer-disjoint chords.
	var wg sync.WaitGroup
	for w := int32(0); w < 8; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			for i := int32(0); i < 4; i++ {
				batch := []krcore.Update{krcore.AddEdgeUpdate(w, n/2+4*w+i)}
				if err := eng.ApplyBatch(batch); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()

	ds := eng.DynamicStats()
	fmt.Printf("updates committed: %d in %d batches\n", ds.Updates, ds.Batches)
	fmt.Printf("journal holds every op: %v\n", j.ops == 32)
	fmt.Printf("journal appends = commit rounds: %v\n", int64(j.appends) == ds.GroupCommits)
	fmt.Printf("rounds never exceed batches: %v\n", ds.GroupCommits >= 1 && ds.GroupCommits <= ds.Batches)
	fmt.Printf("maintenance stayed incremental: %v\n", ds.PatchesIncremental > 0 && ds.PatchesFull == 0)
	// Output:
	// updates committed: 32 in 32 batches
	// journal holds every op: true
	// journal appends = commit rounds: true
	// rounds never exceed batches: true
	// maintenance stayed incremental: true
}
