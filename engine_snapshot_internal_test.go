package krcore

import (
	"bytes"
	"testing"
)

// TestSnapshotStateSkipsOrphanedPrepared pins the capture-race fix in
// snapshotState: when a prepared (k,r) entry's threshold was captured
// as half-built (oracle-only) — which happens when a concurrent query
// finishes preparing between the two capture loops — the setting must
// be skipped like any other mid-construction entry, not turned into a
// snapshot.Write error that would spuriously fail a checkpoint.
func TestSnapshotStateSkipsOrphanedPrepared(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())
	if err := eng.Warm(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := eng.Warm(3, 8); err != nil {
		t.Fatal(err)
	}
	// Recreate the race window deterministically: the (k=2, r=4)
	// threshold looks oracle-only while its prepared entry is ready.
	eng.mu.Lock()
	eng.byR[4] = oracleOnlyREntry(eng.byR[4].oracle)
	eng.mu.Unlock()

	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatalf("half-built threshold broke the snapshot: %v", err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := loaded.Stats()
	if st.Thresholds != 2 || st.Prepared != 1 {
		t.Fatalf("want both thresholds and only the fully-anchored setting: %+v", st)
	}
	// The dropped setting rebuilds lazily and correctly.
	if err := loaded.Warm(2, 4); err != nil {
		t.Fatal(err)
	}
	if st := loaded.Stats(); st.Prepared != 2 {
		t.Fatalf("orphaned setting did not rebuild: %+v", st)
	}
}
