package krcore_test

import (
	"bytes"
	"testing"

	"krcore"
	"krcore/internal/dataset"
)

// benchSnapshot builds a warmed engine over a preset and returns its
// snapshot bytes.
func benchSnapshot(b *testing.B, preset string) (*dataset.Dataset, float64, []byte) {
	b.Helper()
	d, err := dataset.Load(preset)
	if err != nil {
		b.Fatal(err)
	}
	thr, err := d.DefaultThreshold()
	if err != nil {
		b.Fatal(err)
	}
	eng := krcore.NewEngine(d.Graph, d.Metric())
	if err := eng.Warm(5, thr); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	return d, thr, buf.Bytes()
}

func BenchmarkSnapshotLoad(b *testing.B) {
	for _, preset := range []string{"gowalla", "dblp"} {
		b.Run(preset, func(b *testing.B) {
			_, _, raw := benchSnapshot(b, preset)
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := krcore.LoadEngine(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSnapshotRebuild(b *testing.B) {
	for _, preset := range []string{"gowalla", "dblp"} {
		b.Run(preset, func(b *testing.B) {
			d, thr, _ := benchSnapshot(b, preset)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := krcore.NewEngine(d.Graph, d.Metric())
				if err := eng.Warm(5, thr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSnapshotSave(b *testing.B) {
	for _, preset := range []string{"gowalla", "dblp"} {
		b.Run(preset, func(b *testing.B) {
			d, thr, raw := benchSnapshot(b, preset)
			eng := krcore.NewEngine(d.Graph, d.Metric())
			if err := eng.Warm(5, thr); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := eng.SaveSnapshot(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
