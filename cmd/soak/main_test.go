package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSoakSelfHosted runs the whole harness end to end against a
// self-hosted daemon: short mixed soak, server-error gate armed, BENCH
// artifact written and well-formed.
func TestSoakSelfHosted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	err := run(context.Background(), []string{
		"-data", "brightkite", "-dynamic",
		"-k", "5", "-duration", "400ms", "-rate", "80", "-workers", "3",
		"-write-mix", "0.2", "-max-server-errors", "0",
		"-bench-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("soak failed: %v\noutput:\n%s", err, buf.String())
	}
	text := buf.String()
	for _, want := range []string{"self-hosting brightkite", "soaked for", "server:", "bench artifact written"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tables []benchTable
	if err := json.Unmarshal(blob, &tables); err != nil {
		t.Fatalf("artifact is not BENCH json: %v", err)
	}
	if len(tables) != 2 || tables[0].ID != "soak-latency" || tables[1].ID != "soak-server" {
		t.Fatalf("artifact tables = %+v", tables)
	}
	for _, tb := range tables {
		if len(tb.Xs) == 0 || len(tb.Series) == 0 {
			t.Fatalf("table %s empty", tb.ID)
		}
		for _, s := range tb.Series {
			if len(s.Cells) != len(tb.Xs) {
				t.Fatalf("table %s series %s: %d cells for %d columns", tb.ID, s.Name, len(s.Cells), len(tb.Xs))
			}
		}
	}
	// The latency table must report real quantiles, not the no-traffic
	// placeholder, for the read column at least.
	if tables[0].Series[0].Cells[0] == "-" {
		t.Fatalf("no read latency recorded: %+v", tables[0])
	}
}

// TestSoakFlagValidation pins the harness's refusal modes.
func TestSoakFlagValidation(t *testing.T) {
	var buf strings.Builder
	cases := [][]string{
		{"-url", "http://127.0.0.1:1", "-duration", "100ms"}, // no -r with -url
		{"-data", "brightkite", "-write-mix", "1.5"},         // mix out of range
		{"-data", "brightkite", "-write-mix", "0.5",
			"-duration", "100ms"}, // writes against a static self-host
		{"-data", "brightkite", "-load", "x"}, // both sources
		{"-data", "brightkite", "-workers", "0"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestPerWorkerInterval(t *testing.T) {
	if got := perWorkerInterval(0, 8); got != 0 {
		t.Fatalf("unthrottled interval = %v", got)
	}
	if got := perWorkerInterval(100, 4); got != 40*time.Millisecond {
		t.Fatalf("interval = %v, want 40ms (4 workers sharing 100 q/s)", got)
	}
}

func TestFmtLatency(t *testing.T) {
	if got := fmtLatency(0.00425); got != "4.25ms" {
		t.Fatalf("fmtLatency = %q", got)
	}
}
