// Command soak drives a krcored daemon with sustained mixed
// read/write load and reports what both ends of the wire saw: client
// latency percentiles (p50/p99/p999) per operation kind from its own
// histograms, and the daemon's /metrics export for server-side error
// counters and allocation behaviour over the run.
//
// Usage:
//
//	soak -data brightkite -k 5 -duration 30s -rate 300 -write-mix 0.1
//	soak -url http://127.0.0.1:8420 -k 5 -r 10 -duration 1m
//	soak -data gowalla -k 5 -duration 30s -bench-out BENCH_soak.json
//
// Without -url the harness self-hosts: it builds the dataset, serves
// it through the same krcore/server stack as krcored on a loopback
// listener, and soaks that — one command, no daemon to manage, which
// is how CI smoke-tests the serving path and how BENCH artifacts are
// produced. With -url it drives an already-running daemon instead.
//
// Load shape: -workers concurrent clients share a -rate requests/s
// budget (0 = unthrottled). Each request is an update batch with
// probability -write-mix (dynamic targets only), otherwise a query —
// 80% enumerate, 20% find-maximum. The (k,r) setting is warmed before
// the clock starts, so the soak measures steady-state serving, not
// one cold build.
//
// Exit status: -max-server-errors N (default -1, no gate) makes the
// run fail if the daemon's server_errors counter grew by more than N
// over the soak — the CI regression gate for "sustained load must not
// surface daemon faults". Client-side 4xx responses and admission 429s
// are counted and reported but never gate: the harness itself decides
// what load to offer.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"krcore"
	"krcore/client"
	"krcore/internal/dataset"
	"krcore/internal/metrics"
	"krcore/internal/updates"
	"krcore/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soak: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// tally accumulates one operation kind's client-side view of the run.
type tally struct {
	lat       *metrics.Histogram
	ok        atomic.Int64
	busy      atomic.Int64 // 429: admission control shed us
	clientErr atomic.Int64 // other 4xx
	serverErr atomic.Int64 // 5xx observed at the client
	transport atomic.Int64 // connection-level failures
}

func (t *tally) record(elapsed time.Duration, err error) {
	if err == nil {
		t.lat.Observe(elapsed.Seconds())
		t.ok.Add(1)
		return
	}
	var ae *client.APIError
	switch {
	case client.IsBusy(err):
		t.busy.Add(1)
	case errors.As(err, &ae) && ae.StatusCode >= 500:
		t.serverErr.Add(1)
	case errors.As(err, &ae):
		t.clientErr.Add(1)
	default:
		t.transport.Add(1)
	}
}

func (t *tally) failures() int64 {
	return t.clientErr.Load() + t.serverErr.Load() + t.transport.Load()
}

// scrapeCounter reads one series from a parsed /metrics export,
// tolerating its absence (older daemons) as zero.
func scrapeCounter(samples map[string]float64, series string) int64 {
	return int64(samples[series])
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		url       = fs.String("url", "", "target daemon base URL; empty self-hosts the dataset in-process")
		data      = fs.String("data", "", "self-host: preset dataset name (brightkite, gowalla, dblp, pokec)")
		load      = fs.String("load", "", "self-host: load a dataset file written by datagen")
		dynamic   = fs.Bool("dynamic", false, "self-host: serve the mutable engine (required for -write-mix > 0)")
		k         = fs.Int("k", 5, "engagement threshold k")
		r         = fs.Float64("r", 0, "similarity threshold r (0 = self-hosted dataset's default; required with -url)")
		duration  = fs.Duration("duration", 10*time.Second, "measured soak length")
		rate      = fs.Float64("rate", 200, "target aggregate requests/s across all workers (0 = unthrottled)")
		workers   = fs.Int("workers", 8, "concurrent client workers")
		writeMix  = fs.Float64("write-mix", 0, "fraction of requests that are update batches (dynamic targets only)")
		parallel  = fs.Int("parallelism", 0, "per-query worker count sent with each request (0 = server default)")
		seed      = fs.Int64("seed", 1, "workload RNG seed")
		benchOut  = fs.String("bench-out", "", "write the BENCH-format artifact to this file")
		maxSrvErr = fs.Int64("max-server-errors", -1, "fail if the daemon's server_errors counter grows by more than this (-1 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *writeMix < 0 || *writeMix > 1 {
		return fmt.Errorf("-write-mix %v out of [0,1]", *writeMix)
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1")
	}

	base := *url
	if base == "" {
		var shutdown func() error
		var err error
		base, shutdown, err = selfHost(ctx, stdout, *data, *load, *dynamic, *r == 0, r)
		if err != nil {
			return err
		}
		defer func() {
			if err := shutdown(); err != nil {
				log.Printf("self-hosted daemon shutdown: %v", err)
			}
		}()
	} else if *r == 0 {
		return fmt.Errorf("-url requires an explicit -r (no dataset to take a default from)")
	}
	c := client.New(base)

	if err := c.Health(ctx); err != nil {
		return err
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if *writeMix > 0 && !st.Dynamic {
		return fmt.Errorf("-write-mix %v needs a dynamic daemon; target is static", *writeMix)
	}
	if err := c.Warm(ctx, *k, *r); err != nil {
		return fmt.Errorf("warm %d:%g: %w", *k, *r, err)
	}

	before, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("pre-soak scrape: %w", err)
	}
	pre := client.ParseMetrics(before)

	// Client-side latency histograms, one per operation kind, built on
	// the same fixed-bucket estimator the daemon exports.
	reg := metrics.NewRegistry()
	read := &tally{lat: reg.Histogram("soak_read_seconds", "client-observed query latency", metrics.DefLatencyBuckets())}
	write := &tally{lat: reg.Histogram("soak_write_seconds", "client-observed update latency", metrics.DefLatencyBuckets())}

	fmt.Fprintf(stdout, "soaking %s: k=%d r=%g, %v at %s, %d workers, write mix %.0f%%\n",
		base, *k, *r, *duration, describeRate(*rate), *workers, *writeMix*100)

	sctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			soakWorker(sctx, c, workerConfig{
				k: *k, r: *r, parallelism: *parallel,
				writeMix: *writeMix,
				interval: perWorkerInterval(*rate, *workers),
				rng:      rand.New(rand.NewSource(*seed + int64(id))),
			}, read, write)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	after, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("post-soak scrape: %w", err)
	}
	post := client.ParseMetrics(after)

	report := buildReport(elapsed, read, write, pre, post)
	printReport(stdout, report)

	if *benchOut != "" {
		blob, err := json.MarshalIndent(report.bench(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bench artifact written to %s\n", *benchOut)
	}

	if *maxSrvErr >= 0 && report.serverErrDelta > *maxSrvErr {
		return fmt.Errorf("daemon server_errors grew by %d over the soak (gate: %d)", report.serverErrDelta, *maxSrvErr)
	}
	return nil
}

// perWorkerInterval spreads the aggregate rate budget evenly across
// workers; 0 means unthrottled.
func perWorkerInterval(rate float64, workers int) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(workers) / rate * float64(time.Second))
}

func describeRate(rate float64) string {
	if rate <= 0 {
		return "max rate"
	}
	return fmt.Sprintf("%.0f q/s", rate)
}

type workerConfig struct {
	k           int
	r           float64
	parallelism int
	writeMix    float64
	interval    time.Duration
	rng         *rand.Rand
}

// soakWorker issues requests until ctx expires, pacing against its
// share of the rate budget by absolute deadlines so a slow request
// borrows from the following gap instead of skewing the whole run.
func soakWorker(ctx context.Context, c *client.Client, cfg workerConfig, read, write *tally) {
	next := time.Now()
	opts := client.Options{Parallelism: cfg.parallelism}
	for {
		if ctx.Err() != nil {
			return
		}
		if cfg.interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
			next = next.Add(cfg.interval)
		}
		t0 := time.Now()
		var err error
		var isWrite bool
		switch {
		case cfg.writeMix > 0 && cfg.rng.Float64() < cfg.writeMix:
			// Writes grow the graph by lone vertices: always valid,
			// exercises the full journal + group-commit + invalidation
			// path, and keeps the read workload's setting comparable.
			isWrite = true
			_, err = c.ApplyBatch(ctx, []krcore.Update{krcore.AddVertexUpdate()})
		case cfg.rng.Float64() < 0.8:
			_, err = c.Enumerate(ctx, cfg.k, cfg.r, opts)
		default:
			_, err = c.FindMaximum(ctx, cfg.k, cfg.r, opts)
		}
		if ctx.Err() != nil && err != nil {
			// The deadline tore this request down mid-flight; that is
			// the harness clock, not the daemon.
			return
		}
		if isWrite {
			write.record(time.Since(t0), err)
		} else {
			read.record(time.Since(t0), err)
		}
	}
}

// selfHost builds the dataset and serves it on a loopback listener
// through the same server stack as krcored. It returns the base URL
// and a shutdown func. When useDefaultR is set, *r receives the
// dataset's default similarity threshold.
func selfHost(ctx context.Context, stdout io.Writer, data, load string, dynamic, useDefaultR bool, r *float64) (string, func() error, error) {
	d, err := dataset.Open(data, load)
	if err != nil {
		return "", nil, err
	}
	if useDefaultR {
		thr, err := d.DefaultThreshold()
		if err != nil {
			return "", nil, fmt.Errorf("%w; pass -r explicitly", err)
		}
		*r = thr
	}
	var backend server.Backend
	if dynamic {
		attrs, err := updates.Attrs(d)
		if err != nil {
			return "", nil, err
		}
		deng, err := krcore.NewDynamicEngine(d.Graph, attrs)
		if err != nil {
			return "", nil, err
		}
		backend = deng
	} else {
		backend = krcore.NewEngine(d.Graph, d.Metric())
	}
	srv, err := server.New(backend, server.Config{Dataset: d.Name})
	if err != nil {
		return "", nil, err
	}
	if deng, ok := backend.(*krcore.DynamicEngine); ok {
		deng.SetCommitObserver(srv.ObserveGroupCommit)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	g := backend.Graph()
	fmt.Fprintf(stdout, "self-hosting %s (%d vertices, %d edges) on http://%s\n", d.Name, g.N(), g.M(), ln.Addr())
	shutdown := func() error {
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// report is everything the run learned, from both ends of the wire.
type report struct {
	elapsed     time.Duration
	read, write *tally

	queriesDelta   int64
	updatesDelta   int64
	rejectedDelta  int64
	clientErrDelta int64
	serverErrDelta int64
	writeFailDelta int64
	allocDelta     int64
	gcDelta        int64
}

func buildReport(elapsed time.Duration, read, write *tally, pre, post map[string]float64) *report {
	delta := func(series string) int64 {
		return scrapeCounter(post, series) - scrapeCounter(pre, series)
	}
	rp := &report{
		elapsed:        elapsed,
		read:           read,
		write:          write,
		queriesDelta:   delta("krcored_queries_total"),
		updatesDelta:   delta("krcored_updates_applied_total"),
		rejectedDelta:  delta("krcored_rejected_total"),
		clientErrDelta: delta("krcored_client_errors_total"),
		serverErrDelta: delta("krcored_server_errors_total"),
		allocDelta:     delta(`krcored_go_memstats{stat="total_alloc_bytes"}`),
		gcDelta:        delta(`krcored_go_memstats{stat="num_gc"}`),
	}
	for series, v := range post {
		if strings.HasPrefix(series, "krcored_response_write_failures_total{") {
			rp.writeFailDelta += int64(v) - int64(pre[series])
		}
	}
	return rp
}

// quantiles renders a tally's latency percentiles; "-" when the kind
// saw no traffic.
func quantiles(t *tally) (p50, p99, p999, mean string) {
	n := t.lat.Count()
	if n == 0 {
		return "-", "-", "-", "-"
	}
	f := func(q float64) string {
		return fmtLatency(t.lat.Quantile(q))
	}
	return f(0.5), f(0.99), f(0.999), fmtLatency(t.lat.Sum() / float64(n))
}

func fmtLatency(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func printReport(w io.Writer, rp *report) {
	line := func(name string, t *tally) {
		p50, p99, p999, mean := quantiles(t)
		rate := float64(t.ok.Load()) / rp.elapsed.Seconds()
		fmt.Fprintf(w, "%-6s %7d ok (%6.1f/s)  p50 %-9s p99 %-9s p999 %-9s mean %-9s busy %d, failed %d\n",
			name, t.ok.Load(), rate, p50, p99, p999, mean, t.busy.Load(), t.failures())
	}
	fmt.Fprintf(w, "soaked for %v\n", rp.elapsed.Round(time.Millisecond))
	line("read", rp.read)
	line("write", rp.write)
	ops := rp.read.ok.Load() + rp.write.ok.Load()
	allocPerOp := int64(0)
	if ops > 0 {
		allocPerOp = rp.allocDelta / ops
	}
	fmt.Fprintf(w, "server: %d queries, %d updates applied, %d rejected, %d client errors, %d server errors, %d response-write failures\n",
		rp.queriesDelta, rp.updatesDelta, rp.rejectedDelta, rp.clientErrDelta, rp.serverErrDelta, rp.writeFailDelta)
	fmt.Fprintf(w, "server: %d MB allocated (%d B/op), %d GC cycles\n",
		rp.allocDelta>>20, allocPerOp, rp.gcDelta)
}

// benchTable is the repo's BENCH artifact schema.
type benchTable struct {
	ID     string        `json:"id"`
	Title  string        `json:"title"`
	Xlabel string        `json:"xlabel"`
	Xs     []string      `json:"xs"`
	Series []benchSeries `json:"series"`
}

type benchSeries struct {
	Name  string   `json:"name"`
	Cells []string `json:"cells"`
}

func (rp *report) bench() []benchTable {
	row := func(name string, cell func(t *tally) string) benchSeries {
		return benchSeries{Name: name, Cells: []string{cell(rp.read), cell(rp.write)}}
	}
	ops := rp.read.ok.Load() + rp.write.ok.Load()
	allocPerOp := int64(0)
	if ops > 0 {
		allocPerOp = rp.allocDelta / ops
	}
	return []benchTable{
		{
			ID:     "soak-latency",
			Title:  fmt.Sprintf("Sustained mixed load over HTTP: client-observed latency (%v soak)", rp.elapsed.Round(time.Second)),
			Xlabel: "operation",
			Xs:     []string{"read", "write"},
			Series: []benchSeries{
				row("p50", func(t *tally) string { q, _, _, _ := quantiles(t); return q }),
				row("p99", func(t *tally) string { _, q, _, _ := quantiles(t); return q }),
				row("p999", func(t *tally) string { _, _, q, _ := quantiles(t); return q }),
				row("mean", func(t *tally) string { _, _, _, q := quantiles(t); return q }),
				row("throughput", func(t *tally) string {
					return fmt.Sprintf("%.1f/s", float64(t.ok.Load())/rp.elapsed.Seconds())
				}),
				row("errors", func(t *tally) string { return fmt.Sprintf("%d", t.failures()) }),
			},
		},
		{
			ID:     "soak-server",
			Title:  "Daemon-side counters over the soak (from /metrics)",
			Xlabel: "counter",
			Xs: []string{
				"queries", "updates_applied", "rejected",
				"client_errors", "server_errors", "response_write_failures",
				"alloc_bytes_per_op", "gc_cycles",
			},
			Series: []benchSeries{{
				Name: "delta",
				Cells: []string{
					fmt.Sprintf("%d", rp.queriesDelta),
					fmt.Sprintf("%d", rp.updatesDelta),
					fmt.Sprintf("%d", rp.rejectedDelta),
					fmt.Sprintf("%d", rp.clientErrDelta),
					fmt.Sprintf("%d", rp.serverErrDelta),
					fmt.Sprintf("%d", rp.writeFailDelta),
					fmt.Sprintf("%d", allocPerOp),
					fmt.Sprintf("%d", rp.gcDelta),
				},
			}},
		},
	}
}
