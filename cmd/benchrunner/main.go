// Command benchrunner regenerates the paper's tables and figures on the
// synthetic stand-in datasets and prints them as text tables.
//
// Usage:
//
//	benchrunner                # run everything (several minutes)
//	benchrunner -fig fig9a     # run one experiment
//	benchrunner -budget 10s    # change the per-cell INF budget
//	benchrunner -list          # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"krcore/internal/expr"
)

func main() {
	fig := flag.String("fig", "", "experiment id to run (empty = all)")
	budget := flag.Duration("budget", expr.DefaultBudget, "per-cell time budget (exceeded = INF)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range expr.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Brief)
		}
		return
	}

	runner := expr.NewRunner(*budget)
	run := func(e expr.Experiment) {
		start := time.Now()
		rep := e.Run(runner)
		rep.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *fig != "" {
		e := expr.Find(*fig)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *fig)
			os.Exit(1)
		}
		run(*e)
		return
	}
	for _, e := range expr.Experiments {
		run(e)
	}
}
