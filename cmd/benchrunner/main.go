// Command benchrunner regenerates the paper's tables and figures on the
// synthetic stand-in datasets and prints them as text tables or JSON.
//
// Usage:
//
//	benchrunner                       # run everything (several minutes)
//	benchrunner -fig fig9a            # run one experiment
//	benchrunner -fig engine,parmax    # run several experiments
//	benchrunner -budget 10s           # change the per-cell INF budget
//	benchrunner -json                 # emit a JSON array of reports
//	benchrunner -list                 # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"krcore/internal/expr"
)

func main() {
	fig := flag.String("fig", "", "comma-separated experiment ids to run (empty = all)")
	budget := flag.Duration("budget", expr.DefaultBudget, "per-cell time budget (exceeded = INF)")
	asJSON := flag.Bool("json", false, "write the reports as one JSON array on stdout")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range expr.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Brief)
		}
		return
	}

	var selected []expr.Experiment
	if *fig != "" {
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			e := expr.Find(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	} else {
		selected = expr.Experiments
	}

	runner := expr.NewRunner(*budget)
	var reports []*expr.Report
	for _, e := range selected {
		start := time.Now()
		rep := e.Run(runner)
		if *asJSON {
			reports = append(reports, rep)
		} else {
			rep.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
	}
}
