package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOK runs the command and fails the test on error or time-out.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	timedOut, err := run(args, &out, &out)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if timedOut {
		t.Fatalf("run(%v) timed out", args)
	}
	return out.String()
}

// TestRunSaveAndLoadSnapshot is the warm-start round trip: a dataset
// run with -save, then the same query served from the snapshot, must
// print the identical result summary without touching the dataset.
func TestRunSaveAndLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	data, _ := writeSmallDataset(t, dir)
	snap := filepath.Join(dir, "engine.snap")

	first := runOK(t, "-load", data, "-k", "4", "-r", "12", "-algo", "enum", "-save", snap)
	if !strings.Contains(first, "snapshot saved to "+snap) {
		t.Fatalf("missing save confirmation: %q", first)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}

	second := runOK(t, "-load", snap, "-k", "4", "-r", "12", "-algo", "enum")
	if !strings.Contains(second, "loaded snapshot "+snap) {
		t.Fatalf("snapshot not detected by -load: %q", second)
	}
	if !strings.Contains(second, "1 prepared settings") {
		t.Fatalf("snapshot did not carry the warmed setting: %q", second)
	}
	// The cores line must be identical across the rebuild and the
	// warm start.
	coreLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "cores:") {
				return line
			}
		}
		t.Fatalf("no cores line in %q", s)
		return ""
	}
	if coreLine(first) != coreLine(second) {
		t.Fatalf("snapshot run answered differently:\n%q\n%q", coreLine(first), coreLine(second))
	}

	// The maximum search works from the same snapshot too.
	if out := runOK(t, "-load", snap, "-k", "4", "-r", "12", "-algo", "max"); !strings.Contains(out, "cores:") {
		t.Fatalf("max on snapshot: %q", out)
	}
	// Re-saving a loaded snapshot keeps it byte-identical (canonical
	// encoding end to end).
	resnap := filepath.Join(dir, "engine2.snap")
	runOK(t, "-load", snap, "-k", "4", "-r", "12", "-save", resnap)
	a, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot changed across a load/save cycle")
	}
}

// TestRunSaveAfterUpdates checks -updates + -save writes a dynamic
// snapshot that a later run can serve queries from.
func TestRunSaveAfterUpdates(t *testing.T) {
	dir := t.TempDir()
	data, ups := writeSmallDataset(t, dir)
	snap := filepath.Join(dir, "dyn.snap")
	out := runOK(t, "-load", data, "-updates", ups, "-update-batch", "8",
		"-k", "4", "-r", "12", "-save", snap)
	if !strings.Contains(out, "snapshot saved to "+snap) {
		t.Fatalf("missing save confirmation: %q", out)
	}
	if out := runOK(t, "-load", snap, "-k", "4", "-r", "12"); !strings.Contains(out, "cores:") {
		t.Fatalf("query on dynamic snapshot: %q", out)
	}
}

// TestRunSnapshotErrors covers the combinations a snapshot input
// rejects.
func TestRunSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	data, ups := writeSmallDataset(t, dir)
	snap := filepath.Join(dir, "engine.snap")
	runOK(t, "-load", data, "-k", "4", "-r", "12", "-save", snap)

	cases := [][]string{
		{"-load", snap, "-permille", "3"},                               // permille needs the dataset
		{"-load", snap, "-updates", ups},                                // replay needs the dataset
		{"-load", snap, "-algo", "clique"},                              // clique needs the dataset
		{"-load", snap, "-algo", "nosuch"},                              // unknown algorithm
		{"-load", data, "-algo", "clique", "-save", snap},               // clique cannot warm an engine
		{"-load", data, "-save", filepath.Join(dir, "nodir", "x.snap")}, // unwritable target
	}
	for _, args := range cases {
		var out bytes.Buffer
		if _, err := run(args, &out, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}

	// A corrupt snapshot fails with a snapshot format error.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := run([]string{"-load", bad, "-k", "4", "-r", "12"}, &out, &out); err == nil ||
		!strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("corrupt snapshot error = %v, want snapshot format error", err)
	}
}
