package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krcore/internal/dataset"
	"krcore/internal/updates"
)

// writeSmallDataset saves a reduced gowalla-style dataset plus a random
// update stream into dir and returns both paths.
func writeSmallDataset(t *testing.T, dir string) (data, ups string) {
	t.Helper()
	cfg, err := dataset.Preset("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	cfg.N = 150
	cfg.NumCommunities = 5
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data = filepath.Join(dir, "g.txt")
	f, err := os.Create(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ups = filepath.Join(dir, "ups.txt")
	uf, err := os.Create(ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := updates.Write(uf, updates.Random(d, 50, 3), d.Kind); err != nil {
		t.Fatal(err)
	}
	if err := uf.Close(); err != nil {
		t.Fatal(err)
	}
	return data, ups
}

func TestRunLoadedDataset(t *testing.T) {
	data, _ := writeSmallDataset(t, t.TempDir())
	for _, algo := range []string{"enum", "max", "clique"} {
		var out bytes.Buffer
		timedOut, err := run([]string{"-load", data, "-k", "4", "-r", "12", "-algo", algo, "-show", "2"}, &out, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if timedOut {
			t.Fatalf("%s: timed out on a tiny dataset", algo)
		}
		if !strings.Contains(out.String(), "cores:") {
			t.Fatalf("%s: missing summary: %q", algo, out.String())
		}
	}
}

func TestRunUpdatesReplay(t *testing.T) {
	data, ups := writeSmallDataset(t, t.TempDir())
	for _, algo := range []string{"enum", "max"} {
		var out bytes.Buffer
		timedOut, err := run([]string{
			"-load", data, "-updates", ups, "-update-batch", "8",
			"-k", "4", "-r", "12", "-algo", algo,
		}, &out, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if timedOut {
			t.Fatal("replay run timed out")
		}
		s := out.String()
		if !strings.Contains(s, "replayed 50 updates in 7 batches") {
			t.Fatalf("missing replay summary: %q", s)
		}
		if !strings.Contains(s, "scoped invalidation:") || !strings.Contains(s, "cores:") {
			t.Fatalf("missing invalidation/result output: %q", s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	data, ups := writeSmallDataset(t, dir)
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("zz nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                                      // neither -data nor -load
		{"-data", "gowalla", "-load", data},     // both sources
		{"-data", "nosuch"},                     // unknown preset
		{"-load", filepath.Join(dir, "nofile")}, // missing file
		{"-load", bad},                          // unparseable dataset
		{"-load", data, "-algo", "nosuch"},      // unknown algorithm
		{"-load", data, "-updates", filepath.Join(dir, "noups")}, // missing stream
		{"-load", data, "-updates", bad},                         // unparseable stream
		{"-load", data, "-updates", ups, "-algo", "clique"},      // unsupported combo
		{"-badflag"}, // flag error
	}
	for _, args := range cases {
		var out bytes.Buffer
		if _, err := run(args, &out, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunUpdatesCorruptStream is the regression test for the -updates
// replay error handling: a malformed or invalid update line mid-stream
// must abort the run with a line-numbered error (non-zero exit via
// main's log.Fatal) without committing the partial batch.
func TestRunUpdatesCorruptStream(t *testing.T) {
	dir := t.TempDir()
	data, _ := writeSmallDataset(t, dir)

	// Syntactically malformed line mid-stream: rejected at parse time,
	// before any update is applied.
	syntax := filepath.Join(dir, "syntax.txt")
	if err := os.WriteFile(syntax, []byte("ae 0 1\nae 1 2\nae zz !!\nae 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err := run([]string{"-load", data, "-updates", syntax, "-k", "4", "-r", "12"}, &out, &out)
	if err == nil {
		t.Fatal("corrupt stream replayed cleanly")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("parse error does not name line 3: %v", err)
	}

	// Semantically invalid line mid-stream (edge to a vertex that does
	// not exist): parses fine, rejected atomically at replay time. With
	// -update-batch 4 the valid leading ops share the offender's batch
	// and must be discarded with it.
	semantic := filepath.Join(dir, "semantic.txt")
	if err := os.WriteFile(semantic, []byte("ae 0 1\nae 1 2\nae 0 99999\nae 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	_, err = run([]string{"-load", data, "-updates", semantic, "-update-batch", "4", "-k", "4", "-r", "12"}, &out, &out)
	if err == nil {
		t.Fatal("invalid stream replayed cleanly")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("replay error does not name line 3: %v", err)
	}
	if !strings.Contains(err.Error(), "discarded") || !strings.Contains(err.Error(), "0 batches committed") {
		t.Fatalf("replay error does not report batch discard: %v", err)
	}
	if strings.Contains(out.String(), "replayed") {
		t.Fatalf("failed replay still printed a success summary: %q", out.String())
	}
}

func TestRunPreset(t *testing.T) {
	// A preset query with k far above any core: the pipeline runs end to
	// end and reports zero cores quickly.
	var out bytes.Buffer
	timedOut, err := run([]string{"-data", "brightkite", "-k", "500", "-r", "5"}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("preset run timed out")
	}
	if !strings.Contains(out.String(), "cores: 0") {
		t.Fatalf("want zero cores at k=500: %q", out.String())
	}
}
