// Command krcore runs (k,r)-core computations on a dataset: enumerate
// all maximal cores, find the maximum core, or run the clique-based
// baseline, printing result statistics. With -updates it first replays
// a dynamic update stream (written by datagen -updates) through the
// mutable serving engine, reporting incremental maintenance cost, and
// answers the query on the mutated graph.
//
// Usage:
//
//	krcore -data gowalla -k 5 -r 100 -algo enum
//	krcore -data dblp -k 15 -permille 3 -algo max
//	krcore -load mygraph.txt -k 4 -r 25 -algo enum -show 5
//	krcore -load mygraph.txt -updates stream.txt -update-batch 16 -k 4 -r 25
//
// Datasets come from the built-in presets (-data) or a file previously
// written by datagen (-load). For geo datasets -r is a distance in km;
// for keyword datasets use -r as a metric threshold or -permille for
// the paper's top-permille calibration.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"krcore"
	"krcore/internal/core"
	"krcore/internal/dataset"
	"krcore/internal/updates"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krcore: ")
	timedOut, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if timedOut {
		os.Exit(2)
	}
}

// run executes one invocation and reports whether the search exceeded
// its budget (exit code 2 for scripts polling completeness).
func run(args []string, stdout, stderr io.Writer) (timedOut bool, err error) {
	fs := flag.NewFlagSet("krcore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data     = fs.String("data", "", "preset dataset name (brightkite, gowalla, dblp, pokec)")
		load     = fs.String("load", "", "load a dataset file written by datagen")
		k        = fs.Int("k", 5, "degree threshold k")
		r        = fs.Float64("r", 0, "similarity threshold r (km for geo, metric value otherwise)")
		permille = fs.Float64("permille", 0, "derive r from the top-permille of pairwise similarity")
		algo     = fs.String("algo", "enum", "algorithm: enum, max or clique")
		budget   = fs.Duration("budget", time.Minute, "time budget (0 = unlimited)")
		maxNodes = fs.Int64("max-nodes", 0, "global search-node budget shared by all workers (0 = unlimited)")
		parallel = fs.Int("parallel", 1, "worker goroutines searching candidate components")
		show     = fs.Int("show", 0, "print the first N result cores")
		updFile  = fs.String("updates", "", "replay a dynamic update stream before querying")
		updBatch = fs.Int("update-batch", 1, "operations per update commit in -updates replay")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	d, err := dataset.Open(*data, *load)
	if err != nil {
		return false, err
	}
	thr := *r
	if *permille > 0 {
		thr = d.TopPermille(*permille)
		fmt.Fprintf(stdout, "top %g permille -> r = %.4f\n", *permille, thr)
	}
	limits := core.Limits{MaxNodes: *maxNodes}
	if *budget > 0 {
		limits.Deadline = time.Now().Add(*budget)
	}

	var res *core.Result
	g := d.Graph
	if *updFile != "" {
		res, g, err = replayAndQuery(stdout, d, *updFile, *updBatch, *k, thr, *algo, limits, *parallel)
	} else {
		params := core.Params{K: *k, Oracle: d.Oracle(thr)}
		switch *algo {
		case "enum":
			res, err = core.Enumerate(g, params, core.EnumOptions{Limits: limits, Parallelism: *parallel})
		case "max":
			res, err = core.FindMaximum(g, params, core.MaxOptions{Limits: limits, Parallelism: *parallel})
		case "clique":
			res, err = core.CliquePlus(g, params, core.CliqueOptions{Limits: limits, Parallelism: *parallel})
		default:
			err = fmt.Errorf("unknown -algo %q (want enum, max or clique)", *algo)
		}
	}
	if err != nil {
		return false, err
	}

	stats := res.Summarize()
	fmt.Fprintf(stdout, "dataset %s: %d vertices, %d edges\n", d.Name, g.N(), g.M())
	fmt.Fprintf(stdout, "algorithm %s, k=%d, r=%.4f: %v", *algo, *k, thr, res.Elapsed.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Fprint(stdout, " (budget exceeded, results incomplete)")
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "cores: %d, max size: %d, avg size: %.1f (search nodes: %d)\n",
		stats.Count, stats.MaxSize, stats.AvgSize, res.Nodes)
	for i := 0; i < *show && i < len(res.Cores); i++ {
		fmt.Fprintf(stdout, "  core %d (%d vertices): %v\n", i+1, len(res.Cores[i]), res.Cores[i])
	}
	return res.TimedOut, nil
}

// replayAndQuery wires the dataset into a DynamicEngine, warms the
// query setting, replays the update stream and answers the query on the
// mutated snapshot. Warming first makes the replay measure exactly what
// a live service pays: incremental maintenance of prepared state, not
// cold preprocessing.
func replayAndQuery(stdout io.Writer, d *dataset.Dataset, updFile string, batch, k int,
	thr float64, algo string, limits core.Limits, parallel int) (*core.Result, *krcore.Graph, error) {
	if algo != "enum" && algo != "max" {
		return nil, nil, fmt.Errorf("-updates supports -algo enum or max, not %q", algo)
	}
	f, err := os.Open(updFile)
	if err != nil {
		return nil, nil, err
	}
	// ParseStream keeps source line numbers: a malformed line aborts
	// here, before anything is applied, and a semantically invalid
	// update aborts the replay below with its line — in both cases the
	// offending batch is discarded whole (ApplyBatch is atomic) and the
	// process exits non-zero.
	stream, err := updates.ParseStream(f, d.Kind)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	attrs, err := updates.Attrs(d)
	if err != nil {
		return nil, nil, err
	}
	eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
	if err != nil {
		return nil, nil, err
	}
	if err := eng.Warm(k, thr); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	batches, err := stream.ReplayStream(eng, batch)
	if err != nil {
		return nil, nil, fmt.Errorf("replay %s: %w", updFile, err)
	}
	elapsed := time.Since(start)
	ds := eng.DynamicStats()
	fmt.Fprintf(stdout, "replayed %d updates in %d batches: %v (%v/batch)\n",
		len(stream.Ups), batches, elapsed.Round(time.Millisecond), (elapsed / time.Duration(maxInt(batches, 1))).Round(time.Microsecond))
	fmt.Fprintf(stdout, "scoped invalidation: %d indexes kept, %d rebuilt; %d components reused, %d rebuilt\n",
		ds.IndexesKept, ds.IndexesRebuilt, ds.ComponentsReused, ds.ComponentsRebuilt)

	var res *core.Result
	switch algo {
	case "enum":
		res, err = eng.Enumerate(k, thr, core.EnumOptions{Limits: limits, Parallelism: parallel})
	case "max":
		res, err = eng.FindMaximum(k, thr, core.MaxOptions{Limits: limits, Parallelism: parallel})
	}
	if err != nil {
		return nil, nil, err
	}
	return res, eng.Graph(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
