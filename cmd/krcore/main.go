// Command krcore runs (k,r)-core computations on a dataset: enumerate
// all maximal cores, find the maximum core, or run the clique-based
// baseline, printing result statistics.
//
// Usage:
//
//	krcore -data gowalla -k 5 -r 100 -algo enum
//	krcore -data dblp -k 15 -permille 3 -algo max
//	krcore -load mygraph.txt -k 4 -r 25 -algo enum -show 5
//
// Datasets come from the built-in presets (-data) or a file previously
// written by datagen (-load). For geo datasets -r is a distance in km;
// for keyword datasets use -r as a metric threshold or -permille for
// the paper's top-permille calibration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"krcore/internal/core"
	"krcore/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krcore: ")
	var (
		data     = flag.String("data", "", "preset dataset name (brightkite, gowalla, dblp, pokec)")
		load     = flag.String("load", "", "load a dataset file written by datagen")
		k        = flag.Int("k", 5, "degree threshold k")
		r        = flag.Float64("r", 0, "similarity threshold r (km for geo, metric value otherwise)")
		permille = flag.Float64("permille", 0, "derive r from the top-permille of pairwise similarity")
		algo     = flag.String("algo", "enum", "algorithm: enum, max or clique")
		budget   = flag.Duration("budget", time.Minute, "time budget (0 = unlimited)")
		maxNodes = flag.Int64("max-nodes", 0, "global search-node budget shared by all workers (0 = unlimited)")
		parallel = flag.Int("parallel", 1, "worker goroutines searching candidate components")
		show     = flag.Int("show", 0, "print the first N result cores")
	)
	flag.Parse()

	d, err := openDataset(*data, *load)
	if err != nil {
		log.Fatal(err)
	}
	thr := *r
	if *permille > 0 {
		thr = d.TopPermille(*permille)
		fmt.Printf("top %g permille -> r = %.4f\n", *permille, thr)
	}
	params := core.Params{K: *k, Oracle: d.Oracle(thr)}
	limits := core.Limits{MaxNodes: *maxNodes}
	if *budget > 0 {
		limits.Deadline = time.Now().Add(*budget)
	}

	var res *core.Result
	switch *algo {
	case "enum":
		res, err = core.Enumerate(d.Graph, params, core.EnumOptions{Limits: limits, Parallelism: *parallel})
	case "max":
		res, err = core.FindMaximum(d.Graph, params, core.MaxOptions{Limits: limits, Parallelism: *parallel})
	case "clique":
		res, err = core.CliquePlus(d.Graph, params, core.CliqueOptions{Limits: limits, Parallelism: *parallel})
	default:
		log.Fatalf("unknown -algo %q (want enum, max or clique)", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}

	stats := res.Summarize()
	fmt.Printf("dataset %s: %d vertices, %d edges\n", d.Name, d.Graph.N(), d.Graph.M())
	fmt.Printf("algorithm %s, k=%d, r=%.4f: %v", *algo, *k, thr, res.Elapsed.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Print(" (budget exceeded, results incomplete)")
	}
	fmt.Println()
	fmt.Printf("cores: %d, max size: %d, avg size: %.1f (search nodes: %d)\n",
		stats.Count, stats.MaxSize, stats.AvgSize, res.Nodes)
	for i := 0; i < *show && i < len(res.Cores); i++ {
		fmt.Printf("  core %d (%d vertices): %v\n", i+1, len(res.Cores[i]), res.Cores[i])
	}
	if res.TimedOut {
		os.Exit(2)
	}
}

func openDataset(preset, file string) (*dataset.Dataset, error) {
	switch {
	case preset != "" && file != "":
		return nil, fmt.Errorf("use either -data or -load, not both")
	case preset != "":
		return dataset.Load(preset)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Read(f)
	default:
		return nil, fmt.Errorf("need -data <preset> or -load <file>")
	}
}
