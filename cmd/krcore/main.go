// Command krcore runs (k,r)-core computations on a dataset: enumerate
// all maximal cores, find the maximum core, or run the clique-based
// baseline, printing result statistics. With -updates it first replays
// a dynamic update stream (written by datagen -updates) through the
// mutable serving engine, reporting incremental maintenance cost, and
// answers the query on the mutated graph.
//
// Usage:
//
//	krcore -data gowalla -k 5 -r 100 -algo enum
//	krcore -data dblp -k 15 -permille 3 -algo max
//	krcore -load mygraph.txt -k 4 -r 25 -algo enum -show 5
//	krcore -load mygraph.txt -updates stream.txt -update-batch 16 -k 4 -r 25
//	krcore -data gowalla -k 5 -r 100 -save engine.snap
//	krcore -load engine.snap -k 5 -r 100 -algo max
//
// Datasets come from the built-in presets (-data) or a file previously
// written by datagen (-load). For geo datasets -r is a distance in km;
// for keyword datasets use -r as a metric threshold or -permille for
// the paper's top-permille calibration.
//
// -save writes a versioned engine snapshot after the run: the graph,
// attributes, similarity index, filtered graph and the prepared (k,r)
// setting, so a later run warm starts instead of rebuilding. -load
// detects snapshot files by their magic bytes and loads them directly
// (queries then reuse every cached structure; -permille, -updates and
// -algo clique need the raw dataset and are rejected). After an
// -updates replay, -save writes a dynamic snapshot carrying the
// journal offset, the recovery point for crash-restart tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"krcore"
	"krcore/internal/core"
	"krcore/internal/dataset"
	"krcore/internal/snapshot"
	"krcore/internal/updates"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krcore: ")
	timedOut, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if timedOut {
		os.Exit(2)
	}
}

// run executes one invocation and reports whether the search exceeded
// its budget (exit code 2 for scripts polling completeness).
func run(args []string, stdout, stderr io.Writer) (timedOut bool, err error) {
	fs := flag.NewFlagSet("krcore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data     = fs.String("data", "", "preset dataset name (brightkite, gowalla, dblp, pokec)")
		load     = fs.String("load", "", "load a dataset file written by datagen, or an engine snapshot written by -save")
		k        = fs.Int("k", 5, "degree threshold k")
		r        = fs.Float64("r", 0, "similarity threshold r (km for geo, metric value otherwise)")
		permille = fs.Float64("permille", 0, "derive r from the top-permille of pairwise similarity")
		algo     = fs.String("algo", "enum", "algorithm: enum, max or clique")
		budget   = fs.Duration("budget", time.Minute, "time budget (0 = unlimited)")
		maxNodes = fs.Int64("max-nodes", 0, "global search-node budget shared by all workers (0 = unlimited)")
		parallel = fs.Int("parallel", 1, "worker goroutines searching candidate components")
		show     = fs.Int("show", 0, "print the first N result cores")
		updFile  = fs.String("updates", "", "replay a dynamic update stream before querying")
		updBatch = fs.Int("update-batch", 1, "operations per update commit in -updates replay")
		save     = fs.String("save", "", "write an engine snapshot (warmed at the query setting) after the run")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	if *load != "" && *data == "" {
		isSnap, err := sniffSnapshot(*load)
		if err != nil {
			return false, err
		}
		if isSnap {
			return runSnapshot(stdout, *load, *k, *r, *permille, *algo, *updFile,
				*save, *show, *budget, *maxNodes, *parallel)
		}
	}

	d, err := dataset.Open(*data, *load)
	if err != nil {
		return false, err
	}
	thr := *r
	if *permille > 0 {
		thr = d.TopPermille(*permille)
		fmt.Fprintf(stdout, "top %g permille -> r = %.4f\n", *permille, thr)
	}
	limits := limitsFor(*budget, *maxNodes)

	var res *core.Result
	g := d.Graph
	var snapSource interface{ SaveSnapshot(io.Writer) error }
	if *updFile != "" {
		var deng *krcore.DynamicEngine
		res, g, deng, err = replayAndQuery(stdout, d, *updFile, *updBatch, *k, thr, *algo, limits, *parallel)
		snapSource = deng
	} else if *save != "" {
		// A snapshot should carry the warmed query setting, so the run
		// goes through the serving engine instead of the one-shot path.
		if *algo == "clique" {
			return false, fmt.Errorf("-save supports -algo enum or max, not %q", *algo)
		}
		eng := krcore.NewEngine(d.Graph, d.Metric())
		snapSource = eng
		switch *algo {
		case "enum":
			res, err = eng.Enumerate(*k, thr, core.EnumOptions{Limits: limits, Parallelism: *parallel})
		case "max":
			res, err = eng.FindMaximum(*k, thr, core.MaxOptions{Limits: limits, Parallelism: *parallel})
		default:
			err = fmt.Errorf("unknown -algo %q (want enum or max)", *algo)
		}
	} else {
		params := core.Params{K: *k, Oracle: d.Oracle(thr)}
		switch *algo {
		case "enum":
			res, err = core.Enumerate(g, params, core.EnumOptions{Limits: limits, Parallelism: *parallel})
		case "max":
			res, err = core.FindMaximum(g, params, core.MaxOptions{Limits: limits, Parallelism: *parallel})
		case "clique":
			res, err = core.CliquePlus(g, params, core.CliqueOptions{Limits: limits, Parallelism: *parallel})
		default:
			err = fmt.Errorf("unknown -algo %q (want enum, max or clique)", *algo)
		}
	}
	if err != nil {
		return false, err
	}

	printResult(stdout, d.Name, g, *algo, *k, thr, res, *show)
	if *save != "" {
		if err := writeSnapshotFile(stdout, snapSource, *save); err != nil {
			return false, err
		}
	}
	return res.TimedOut, nil
}

// limitsFor assembles the per-run search limits.
func limitsFor(budget time.Duration, maxNodes int64) core.Limits {
	limits := core.Limits{MaxNodes: maxNodes}
	if budget > 0 {
		limits.Deadline = time.Now().Add(budget)
	}
	return limits
}

// sniffSnapshot reports whether the file starts with the engine
// snapshot magic (as written by -save), distinguishing it from the
// datagen text format.
func sniffSnapshot(file string) (bool, error) {
	f, err := os.Open(file)
	if err != nil {
		return false, err
	}
	defer f.Close()
	hdr := make([]byte, 8)
	n, _ := io.ReadFull(f, hdr)
	return snapshot.IsMagic(hdr[:n]), nil
}

// runSnapshot serves the query from a loaded engine snapshot: no
// dataset generation, no index build, no preparation for settings the
// snapshot already carries.
func runSnapshot(stdout io.Writer, file string, k int, r, permille float64, algo, updFile,
	save string, show int, budget time.Duration, maxNodes int64, parallel int) (bool, error) {
	switch {
	case permille > 0:
		return false, fmt.Errorf("-permille needs the raw dataset; query a snapshot with an explicit -r")
	case updFile != "":
		return false, fmt.Errorf("-updates needs the raw dataset, not a snapshot (replay journals against krcored checkpoints instead)")
	case algo == "clique":
		return false, fmt.Errorf("-algo clique runs on raw datasets only")
	}
	f, err := os.Open(file)
	if err != nil {
		return false, err
	}
	defer f.Close()
	t0 := time.Now()
	eng, err := krcore.LoadEngine(f)
	if err != nil {
		return false, err
	}
	st := eng.Stats()
	fmt.Fprintf(stdout, "loaded snapshot %s in %v (%d thresholds, %d prepared settings)\n",
		file, time.Since(t0).Round(time.Microsecond), st.Thresholds, st.Prepared)

	// The budget clock starts after the load, mirroring the dataset
	// path (whose deadline starts after dataset.Open): -budget bounds
	// the search, not the warm start.
	limits := limitsFor(budget, maxNodes)
	var res *core.Result
	switch algo {
	case "enum":
		res, err = eng.Enumerate(k, r, core.EnumOptions{Limits: limits, Parallelism: parallel})
	case "max":
		res, err = eng.FindMaximum(k, r, core.MaxOptions{Limits: limits, Parallelism: parallel})
	default:
		err = fmt.Errorf("unknown -algo %q (want enum or max)", algo)
	}
	if err != nil {
		return false, err
	}
	printResult(stdout, filepath.Base(file), eng.Graph(), algo, k, r, res, show)
	if save != "" {
		if err := writeSnapshotFile(stdout, eng, save); err != nil {
			return false, err
		}
	}
	return res.TimedOut, nil
}

// printResult prints the shared result summary.
func printResult(stdout io.Writer, name string, g *krcore.Graph, algo string, k int,
	thr float64, res *core.Result, show int) {
	stats := res.Summarize()
	fmt.Fprintf(stdout, "dataset %s: %d vertices, %d edges\n", name, g.N(), g.M())
	fmt.Fprintf(stdout, "algorithm %s, k=%d, r=%.4f: %v", algo, k, thr, res.Elapsed.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Fprint(stdout, " (budget exceeded, results incomplete)")
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "cores: %d, max size: %d, avg size: %.1f (search nodes: %d)\n",
		stats.Count, stats.MaxSize, stats.AvgSize, res.Nodes)
	for i := 0; i < show && i < len(res.Cores); i++ {
		fmt.Fprintf(stdout, "  core %d (%d vertices): %v\n", i+1, len(res.Cores[i]), res.Cores[i])
	}
}

// writeSnapshotFile saves the engine atomically (temp file + sync +
// rename, see snapshot.WriteFileAtomic).
func writeSnapshotFile(stdout io.Writer, s interface{ SaveSnapshot(io.Writer) error }, path string) error {
	if s == nil {
		return fmt.Errorf("no engine to snapshot")
	}
	t0 := time.Now()
	size, err := snapshot.WriteFileAtomic(path, s.SaveSnapshot)
	if err != nil {
		return fmt.Errorf("save snapshot: %w", err)
	}
	fmt.Fprintf(stdout, "snapshot saved to %s (%d bytes, %v)\n",
		path, size, time.Since(t0).Round(time.Microsecond))
	return nil
}

// replayAndQuery wires the dataset into a DynamicEngine, warms the
// query setting, replays the update stream and answers the query on the
// mutated snapshot. Warming first makes the replay measure exactly what
// a live service pays: incremental maintenance of prepared state, not
// cold preprocessing.
func replayAndQuery(stdout io.Writer, d *dataset.Dataset, updFile string, batch, k int,
	thr float64, algo string, limits core.Limits, parallel int) (*core.Result, *krcore.Graph, *krcore.DynamicEngine, error) {
	if algo != "enum" && algo != "max" {
		return nil, nil, nil, fmt.Errorf("-updates supports -algo enum or max, not %q", algo)
	}
	f, err := os.Open(updFile)
	if err != nil {
		return nil, nil, nil, err
	}
	// ParseStream keeps source line numbers: a malformed line aborts
	// here, before anything is applied, and a semantically invalid
	// update aborts the replay below with its line — in both cases the
	// offending batch is discarded whole (ApplyBatch is atomic) and the
	// process exits non-zero.
	stream, err := updates.ParseStream(f, d.Kind)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	attrs, err := updates.Attrs(d)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := eng.Warm(k, thr); err != nil {
		return nil, nil, nil, err
	}
	start := time.Now()
	batches, err := stream.ReplayStream(eng, batch)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("replay %s: %w", updFile, err)
	}
	elapsed := time.Since(start)
	ds := eng.DynamicStats()
	fmt.Fprintf(stdout, "replayed %d updates in %d batches: %v (%v/batch)\n",
		len(stream.Ups), batches, elapsed.Round(time.Millisecond), (elapsed / time.Duration(maxInt(batches, 1))).Round(time.Microsecond))
	fmt.Fprintf(stdout, "scoped invalidation: %d indexes kept, %d rebuilt; %d components reused, %d rebuilt\n",
		ds.IndexesKept, ds.IndexesRebuilt, ds.ComponentsReused, ds.ComponentsRebuilt)

	var res *core.Result
	switch algo {
	case "enum":
		res, err = eng.Enumerate(k, thr, core.EnumOptions{Limits: limits, Parallelism: parallel})
	case "max":
		res, err = eng.FindMaximum(k, thr, core.MaxOptions{Limits: limits, Parallelism: parallel})
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return res, eng.Graph(), eng, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
