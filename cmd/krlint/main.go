// Command krlint runs the repo's invariant analyzers (internal/lint)
// over package patterns, printing findings in the familiar
// file:line:col compiler shape.
//
// Usage:
//
//	krlint [flags] [patterns]
//
// Patterns follow the go tool: "./..." (the default) walks every
// package under the current module, "./server" names one package.
//
// Flags:
//
//	-only lockheld,decodebound   run a subset of the suite
//	-list                        print the analyzers and exit
//	-json                        emit findings as a JSON array
//	-C dir                       analyze the module rooted at dir
//	-summary krcore.Func         print one function's call-graph summary
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors. All
// requested packages are loaded first and analyzed as one module, so
// interprocedural facts (may-block, lock sets, map-order taint) flow
// across package boundaries; output is sorted by position and stable
// across runs. The analyzers, the invariants they encode and the
// suppression escapes are documented in internal/lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"krcore/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("krlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	dir := fs.String("C", ".", "analyze the module rooted at this directory")
	summary := fs.String("summary", "", "print the call-graph summary of one function (exact key or suffix) and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: krlint [flags] [patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "krlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "krlint: %v\n", err)
		return 2
	}
	dirs, err := loader.Expand(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "krlint: %v\n", err)
		return 2
	}

	// Load every requested package first: the module is analyzed as one
	// unit so call-graph summaries see across package boundaries.
	var pkgs []*lint.Package
	for _, rel := range dirs {
		pkg, err := loader.LoadDir(rel)
		if err != nil {
			fmt.Fprintf(stderr, "krlint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	// Transitively loaded local imports widen the summary table without
	// being analyzed themselves.
	var deps []*lint.Package
	requested := map[string]bool{}
	for _, p := range pkgs {
		requested[p.Path] = true
	}
	for _, p := range loader.LoadedLocal() {
		if !requested[p.Path] {
			deps = append(deps, p)
		}
	}

	if *summary != "" {
		return printSummary(stdout, stderr, loader, pkgs, deps, *summary)
	}

	all, err := lint.RunModule(pkgs, deps, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "krlint: %v\n", err)
		return 2
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "krlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(all) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "krlint: %d finding(s)\n", len(all))
		}
		return 1
	}
	return 0
}

// printSummary resolves query against the module's summary table —
// exact function key first ("krcore/internal/updates.Compact",
// "(krcore/internal/updates.Journal).AppendBatch"), then suffix match
// — and prints every matching summary.
func printSummary(stdout, stderr io.Writer, loader *lint.Loader, pkgs, deps []*lint.Package, query string) int {
	sums := lint.BuildSummaries(append(pkgs, deps...))
	var matched []string
	if sums.Of(query) != nil {
		matched = []string{query}
	} else {
		for _, key := range sums.Keys() {
			if strings.HasSuffix(key, query) {
				matched = append(matched, key)
			}
		}
	}
	if len(matched) == 0 {
		fmt.Fprintf(stderr, "krlint: no function matches %q (keys look like pkgpath.Func or (pkgpath.Type).Method)\n", query)
		return 2
	}
	for i, key := range matched {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprint(stdout, sums.Of(key).Format(loader.Fset()))
	}
	return 0
}
