// Command krlint runs the repo's invariant analyzers (internal/lint)
// over package patterns, printing findings in the familiar
// file:line:col compiler shape.
//
// Usage:
//
//	krlint [flags] [patterns]
//
// Patterns follow the go tool: "./..." (the default) walks every
// package under the current module, "./server" names one package.
//
// Flags:
//
//	-only lockheld,decodebound   run a subset of the suite
//	-list                        print the analyzers and exit
//	-json                        emit findings as a JSON array
//	-C dir                       analyze the module rooted at dir
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors. The
// analyzers, the invariants they encode and the suppression escapes
// are documented in internal/lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"krcore/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("krlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	dir := fs.String("C", ".", "analyze the module rooted at this directory")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: krlint [flags] [patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "krlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "krlint: %v\n", err)
		return 2
	}
	dirs, err := loader.Expand(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "krlint: %v\n", err)
		return 2
	}

	var all []lint.Diagnostic
	for _, rel := range dirs {
		pkg, err := loader.LoadDir(rel)
		if err != nil {
			fmt.Fprintf(stderr, "krlint: %v\n", err)
			return 2
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "krlint: %v\n", err)
			return 2
		}
		all = append(all, diags...)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "krlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(all) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "krlint: %d finding(s)\n", len(all))
		}
		return 1
	}
	return 0
}
