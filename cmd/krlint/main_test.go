package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"krcore/internal/lint"
)

const badmod = "testdata/badmod"

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestListPrintsSuite(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

func TestFindingsExitNonZero(t *testing.T) {
	code, out, stderr := runCmd(t, "-C", badmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a tree with violations (stderr: %s)", code, stderr)
	}
	for _, want := range []string{
		"sentinel ErrBad formatted with %v",
		"(wrapsentinel)",
		"Background() with a caller context in scope",
		"(ctxbackground)",
		filepath.Join("testdata", "badmod", "bad.go"),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing the finding count: %s", stderr)
	}
}

func TestOnlyFilters(t *testing.T) {
	// Restricting to an analyzer the fixture does not violate must exit
	// clean: the subset really is the only thing run.
	code, out, stderr := runCmd(t, "-only", "lockheld,atomicfield,decodebound", "-C", badmod, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (out: %s stderr: %s)", code, out, stderr)
	}
	code, out, _ = runCmd(t, "-only", "wrapsentinel", "-C", badmod, "./...")
	if code != 1 || strings.Contains(out, "ctxbackground") {
		t.Fatalf("-only wrapsentinel: exit=%d out=%s", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runCmd(t, "-json", "-C", badmod, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	code, out, _ = runCmd(t, "-json", "-C", badmod, "-only", "lockheld", "./...")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("clean -json run: exit=%d out=%q, want empty array", code, out)
	}
}

func TestJSONDeterministic(t *testing.T) {
	// Byte-identical output across runs is the contract CI annotations
	// and diff-based tooling rely on: the global sort breaks every tie.
	_, first, _ := runCmd(t, "-json", "-C", badmod, "./...")
	_, second, _ := runCmd(t, "-json", "-C", badmod, "./...")
	if first != second {
		t.Fatalf("-json output differs between identical runs:\n%s\n---\n%s", first, second)
	}
}

func TestSummaryFlag(t *testing.T) {
	// Suffix match: "Flatten" resolves to badmod.Flatten.
	code, out, stderr := runCmd(t, "-C", badmod, "-summary", "Flatten", "./...")
	if code != 0 {
		t.Fatalf("-summary Flatten exit = %d (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"badmod.Flatten", "declared at", "may block: no"} {
		if !strings.Contains(out, want) {
			t.Errorf("-summary output missing %q:\n%s", want, out)
		}
	}
	// Exact key match prints the same summary.
	code, exact, _ := runCmd(t, "-C", badmod, "-summary", "badmod.Flatten", "./...")
	if code != 0 || exact != out {
		t.Fatalf("exact-key summary differs from suffix match: exit=%d\n%s\n---\n%s", code, exact, out)
	}
	// An unknown function is a usage error.
	code, _, stderr = runCmd(t, "-C", badmod, "-summary", "NoSuchFunc", "./...")
	if code != 2 || !strings.Contains(stderr, "no function matches") {
		t.Fatalf("-summary NoSuchFunc: exit=%d stderr=%s", code, stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCmd(t, "-nonsense"); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code, _, stderr := runCmd(t, "-only", "nope"); code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Fatalf("unknown analyzer: exit=%d stderr=%s", code, stderr)
	}
	if code, _, _ := runCmd(t, "-C", badmod, "./does-not-exist"); code != 2 {
		t.Fatalf("bad pattern exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-C", "testdata/definitely-missing", "./..."); code != 2 {
		t.Fatalf("bad -C exit = %d, want 2", code)
	}
}

// TestRepoClean runs the full suite over the real module — the
// PR-level regression: reintroducing any violation krlint fixed
// (snapshot I/O under the serving lock, context.Background in the
// daemon's shutdown path, a plainly-read atomic counter) fails this
// test, and it is the same invocation the CI lint job performs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	code, out, stderr := runCmd(t, "-C", "../..", "./...")
	if code != 0 {
		t.Fatalf("krlint ./... on the repo: exit=%d\nfindings:\n%s\nstderr:\n%s", code, out, stderr)
	}
}
