// Package badmod is a krlint driver fixture: a module that violates
// two analyzers (wrapsentinel, ctxbackground), so driver tests can
// assert the non-zero exit, the finding output, and -only filtering.
package badmod

import (
	"context"
	"errors"
	"fmt"
)

// ErrBad is a sentinel callers match with errors.Is.
var ErrBad = errors.New("bad")

// Flatten breaks the sentinel contract: %v instead of %w.
func Flatten() error {
	return fmt.Errorf("op: %v", ErrBad)
}

// Sever drops the caller's context.
func Sever(ctx context.Context) error {
	<-context.Background().Done()
	return nil
}
