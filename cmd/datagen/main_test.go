package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krcore/internal/dataset"
	"krcore/internal/updates"
)

func TestRunWritesDatasetAndUpdates(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "g.txt")
	ups := filepath.Join(dir, "g-updates.txt")
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-preset", "gowalla", "-n", "80", "-out", data,
		"-updates", "40", "-updates-out", ups,
	}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "wrote gowalla") || !strings.Contains(errBuf.String(), "wrote 40 updates") {
		t.Fatalf("missing summary output: %q", errBuf.String())
	}
	// The dataset file round-trips.
	f, err := os.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph.N() != 80 {
		t.Fatalf("reloaded N = %d, want 80", d.Graph.N())
	}
	// The update stream parses and replays.
	uf, err := os.Open(ups)
	if err != nil {
		t.Fatal(err)
	}
	defer uf.Close()
	parsed, err := updates.Parse(uf, d.Kind)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 40 {
		t.Fatalf("parsed %d updates, want 40", len(parsed))
	}
}

func TestRunToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-preset", "brightkite", "-n", "60", "-seed", "9"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "d brightkite") {
		t.Fatalf("stdout does not start with a dataset header: %q", out.String()[:40])
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-preset", "nosuch"},
		{"-updates", "10"}, // missing -updates-out
		{"-preset", "gowalla", "-n", "50", "-out", filepath.Join(dir, "missing", "x.txt")},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
