// Command datagen generates the synthetic stand-in datasets and writes
// them in the text format understood by krcore -load. With -updates it
// additionally emits a random dynamic update stream for the generated
// dataset, replayable with krcore -updates.
//
// Usage:
//
//	datagen -preset gowalla -out gowalla.txt
//	datagen -preset dblp -seed 7 -n 8000 -out big-dblp.txt
//	datagen -preset gowalla -out g.txt -updates 1000 -updates-out g-updates.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"krcore/internal/dataset"
	"krcore/internal/updates"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset  = fs.String("preset", "gowalla", "preset to generate (brightkite, gowalla, dblp, pokec)")
		out     = fs.String("out", "", "output file (default stdout)")
		seed    = fs.Int64("seed", 0, "override the preset's seed (0 = keep)")
		n       = fs.Int("n", 0, "override the vertex count (0 = keep)")
		nUps    = fs.Int("updates", 0, "also generate a random update stream of this many operations")
		upsOut  = fs.String("updates-out", "", "update stream output file (required with -updates)")
		upsSeed = fs.Int64("updates-seed", 1, "seed for the update stream")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nUps > 0 && *upsOut == "" {
		return fmt.Errorf("-updates needs -updates-out (the dataset already uses -out/stdout)")
	}

	cfg, err := dataset.Preset(*preset)
	if err != nil {
		return err
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *n != 0 {
		// Scale community count with the vertex count so density is
		// preserved.
		cfg.NumCommunities = cfg.NumCommunities * *n / cfg.N
		cfg.N = *n
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}

	w := stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := d.Save(w); err != nil {
		if f != nil {
			f.Close()
		}
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "wrote %s: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		d.Name, d.Graph.N(), d.Graph.M(), d.Graph.AvgDegree(), d.Graph.MaxDegree())

	if *nUps > 0 {
		ups := updates.Random(d, *nUps, *upsSeed)
		f, err := os.Create(*upsOut)
		if err != nil {
			return err
		}
		if err := updates.Write(f, ups, d.Kind); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d updates to %s\n", len(ups), *upsOut)
	}
	return nil
}
