// Command datagen generates the synthetic stand-in datasets and writes
// them in the text format understood by krcore -load.
//
// Usage:
//
//	datagen -preset gowalla -out gowalla.txt
//	datagen -preset dblp -seed 7 -n 8000 -out big-dblp.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"krcore/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		preset = flag.String("preset", "gowalla", "preset to generate (brightkite, gowalla, dblp, pokec)")
		out    = flag.String("out", "", "output file (default stdout)")
		seed   = flag.Int64("seed", 0, "override the preset's seed (0 = keep)")
		n      = flag.Int("n", 0, "override the vertex count (0 = keep)")
	)
	flag.Parse()

	cfg, err := dataset.Preset(*preset)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *n != 0 {
		// Scale community count with the vertex count so density is
		// preserved.
		cfg.NumCommunities = cfg.NumCommunities * *n / cfg.N
		cfg.N = *n
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := d.Save(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		d.Name, d.Graph.N(), d.Graph.M(), d.Graph.AvgDegree(), d.Graph.MaxDegree())
}
