//go:build !windows

package main

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"krcore"
)

// TestDaemonSigusr1Checkpoint checks SIGUSR1 triggers a live
// checkpoint without interrupting serving.
func TestDaemonSigusr1Checkpoint(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.snap")
	c, shutdown := startDaemon(t,
		"-data", "brightkite", "-addr", "127.0.0.1:0", "-warm", "4:25", "-snapshot-save", ck)
	defer shutdown()
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ck); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGUSR1 wrote no checkpoint")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Serving continues after the checkpoint.
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The checkpoint is immediately loadable.
	f, err := os.Open(ck)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := krcore.LoadEngine(f); err != nil {
		t.Fatalf("SIGUSR1 checkpoint unloadable: %v", err)
	}
}
