// Command krcored serves (k,r)-core queries over HTTP: it loads one
// attributed social network, builds the caching serving engine and
// exposes enumerate / enumerate-containing / find-maximum / warm /
// stats endpoints as JSON (see krcore/api for the wire format and
// krcore/client for the Go client). With -dynamic it serves the
// mutable engine instead and additionally accepts atomic update
// batches, so the graph can evolve under live query traffic.
//
// Usage:
//
//	krcored -data gowalla -warm 5
//	krcored -data brightkite -addr 127.0.0.1:8420 -concurrency 8
//	krcored -load mygraph.txt -dynamic -warm 4:12,5:12
//	krcored -data brightkite -warm 5 -snapshot-save checkpoint.snap
//	krcored -snapshot checkpoint.snap -addr 127.0.0.1:8420
//	krcored -load mygraph.txt -dynamic -journal updates.journal -snapshot-save checkpoint.snap
//
//	curl -s localhost:8420/v1/enumerate -d '{"k":5,"r":10}'
//	curl -s localhost:8420/v1/stats
//
// The daemon answers every query under a per-request deadline and node
// budget (request fields, clamped by -max-timeout / -max-nodes), bounds
// concurrent searches with an admission-control semaphore (-concurrency,
// excess requests queue up to -queue-wait, then 429), and drains
// in-flight queries before exiting on SIGINT/SIGTERM.
//
// # Observability
//
// GET /metrics serves the daemon's full metric registry in Prometheus
// text format: per-endpoint request and search latency histograms,
// admission-wait times and queue depth, cache hit/miss counters
// (engine-wide and per prepared (k,r) setting), the client/server
// error split, group-commit coalescing and journal fsync latency on
// dynamic daemons, and Go runtime gauges — everything a scraper needs
// to alert on the daemon without parsing /v1/stats. -pprof additionally
// mounts net/http/pprof under /debug/pprof/ for live CPU and heap
// profiles (opt-in; leave it off on exposed listeners). cmd/soak
// drives a daemon with sustained mixed load and reports latency
// percentiles from both sides of the wire.
//
// # Checkpoints
//
// -snapshot-save names a checkpoint file: the daemon writes its engine
// snapshot there — graph, attributes, similarity indexes, filtered
// graphs and every prepared (k,r) setting — on SIGUSR1 and again after
// the shutdown drain, atomically (temp file + rename), so a crash
// mid-write never corrupts the previous checkpoint. -snapshot starts
// the daemon from such a file instead of -data/-load, warm in
// milliseconds: every setting the checkpoint carries serves its first
// query as a cache hit. Dynamic checkpoints carry the update journal
// offset; an operator feeding the daemon from an external journal
// resumes it from that offset after a crash (kill -9) restart. A
// failed checkpoint write on SIGUSR1 is logged and serving continues;
// on the shutdown path it makes the daemon exit non-zero.
//
// # Journal
//
// -journal (dynamic only) names a write-ahead update log: every
// committed batch group is appended — one write and one fsync per
// commit round, shared by all coalesced writers — before engine state
// changes. On start the daemon replays the journal tail past the
// engine's committed offset, so a crash loses nothing that was acked.
// When -snapshot-save is also set, each checkpoint compacts the
// journal to the operations the snapshot does not yet contain, keeping
// crash-recovery replay cost proportional to the traffic since the
// last checkpoint. The stats endpoint reports the tail length as
// dynamic_engine.journal_ops.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"krcore"
	"krcore/client"
	"krcore/internal/dataset"
	"krcore/internal/snapshot"
	"krcore/internal/updates"
	"krcore/replica"
	"krcore/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krcored: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// snapshotter is the save surface shared by both engine flavours.
type snapshotter interface {
	SaveSnapshot(w io.Writer) error
}

// run executes one daemon lifetime: it serves until ctx is cancelled
// (SIGINT/SIGTERM in production, the test harness otherwise), then
// drains in-flight queries and returns. Every write on the shutdown
// path is checked: a daemon that cannot drain, log its drain, or
// persist its final checkpoint exits non-zero with the cause logged.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("krcored", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data        = fs.String("data", "", "preset dataset name (brightkite, gowalla, dblp, pokec)")
		load        = fs.String("load", "", "load a dataset file written by datagen")
		snapLoad    = fs.String("snapshot", "", "start from an engine snapshot file (instead of -data/-load)")
		snapSave    = fs.String("snapshot-save", "", "checkpoint file written on SIGUSR1 and after the shutdown drain")
		journalPath = fs.String("journal", "", "append-only update journal (dynamic only): commits are logged write-ahead, the tail past the engine's offset is replayed on start, and checkpoints compact it")
		addr        = fs.String("addr", "127.0.0.1:8420", "listen address (host:port; port 0 picks a free port)")
		dynamic     = fs.Bool("dynamic", false, "serve the mutable engine and accept /v1/update batches")
		concurrency = fs.Int("concurrency", 4, "searches running at once (admission-control limit)")
		queue       = fs.Int("queue", 64, "requests allowed to wait for a search slot before 429")
		queueWait   = fs.Duration("queue-wait", 10*time.Second, "longest a queued request waits before 429")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request search deadline")
		maxTimeout  = fs.Duration("max-timeout", 2*time.Minute, "upper clamp on per-request deadlines")
		maxNodes    = fs.Int64("max-nodes", 0, "upper clamp on per-request search-node budgets (0 = unlimited)")
		parallelCap = fs.Int("parallel-cap", 8, "upper clamp on per-request worker counts")
		warm        = fs.String("warm", "", "comma-separated settings to pre-build: k (default threshold) or k:r")
		grace       = fs.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight queries")
		withPprof   = fs.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/ (opt-in)")

		follow    = fs.String("follow", "", "replicate the leader daemon at this base URL: bootstrap from its snapshot, tail its journal, serve read-only")
		pollWait  = fs.Duration("poll-wait", 2*time.Second, "follower mode: journal long-poll duration per tail request")
		route     = fs.Bool("route", false, "run as a fleet router instead of a serving engine (requires -leader)")
		leaderF   = fs.String("leader", "", "router mode: leader base URL")
		followers = fs.String("followers", "", "router mode: comma-separated follower base URLs")
		probe     = fs.Duration("probe", time.Second, "router mode: fleet health-probe interval")
		failAfter = fs.Int("fail-after", 3, "router mode: consecutive failed leader probes before promoting the freshest follower")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *route {
		if *leaderF == "" {
			return fmt.Errorf("-route requires -leader")
		}
		return runRouter(ctx, stdout, *addr, *leaderF, *followers, *probe, *failAfter, *grace)
	}
	if *follow != "" && (*data != "" || *load != "" || *snapLoad != "") {
		return fmt.Errorf("-follow replicates the leader's state; drop -data/-load/-snapshot")
	}

	if *snapSave != "" {
		// Pure flag validation, so a misconfigured checkpoint path
		// fails in milliseconds — before the engine build the flag
		// exists to make avoidable.
		if _, err := os.Stat(filepath.Dir(*snapSave)); err != nil {
			return fmt.Errorf("-snapshot-save: %w", err)
		}
	}
	// Capture checkpoint signals before any long-running build: an
	// un-Notify'd SIGUSR1 would kill the process with its default
	// disposition. A signal arriving during warm-up queues in the
	// channel and is served once the daemon starts serving.
	usr1 := make(chan os.Signal, 1)
	if len(checkpointSignals) > 0 {
		// Registering zero signals would subscribe to all of them, so
		// the platform-gated empty set must skip Notify entirely.
		signal.Notify(usr1, checkpointSignals...)
		defer signal.Stop(usr1)
	}

	var (
		backend server.Backend
		d       *dataset.Dataset
		name    string
		journal *updates.Journal
		fol     *replica.Follower
		err     error
	)
	if *follow != "" {
		fol, journal, err = openFollower(ctx, stdout, *follow, *journalPath, *pollWait)
		if err != nil {
			return err
		}
		backend, name = fol, "replica:"+*follow
	} else {
		backend, d, name, err = openBackend(stdout, *snapLoad, *data, *load, *dynamic)
		if err != nil {
			return err
		}
		journal, err = openJournal(stdout, backend, *journalPath, *dynamic)
		if err != nil {
			return err
		}
	}
	if journal != nil {
		defer journal.Close()
	}

	cfg := server.Config{
		Dataset:        name,
		MaxConcurrent:  *concurrency,
		MaxQueue:       *queue,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		MaxParallelism: *parallelCap,
	}
	if journal != nil {
		cfg.JournalLen = journal.TailOps
		// Any node with a journal can serve the stream — a leader for
		// its followers, a promoted follower for the fleet's survivors.
		cfg.Tail = journal
	}
	if fol != nil {
		cfg.LeaderURL = *follow
		cfg.Lag = fol.Lag
		cfg.Snapshot = fol.SaveSnapshot
		cfg.OnPromote = fol.Stop
	} else if deng, ok := backend.(*krcore.DynamicEngine); ok {
		cfg.Snapshot = deng.SaveSnapshot
	}
	srv, err := server.New(backend, cfg)
	if err != nil {
		return err
	}
	// Route the write path's instrumentation into the server's metric
	// registry: group-commit coalescing from the engine, append latency
	// (write + fsync) from the journal.
	if deng, ok := backend.(*krcore.DynamicEngine); ok {
		deng.SetCommitObserver(srv.ObserveGroupCommit)
	}
	if journal != nil {
		journal.SetAppendObserver(srv.ObserveJournalAppend)
	}
	if fol != nil {
		fol.RegisterMetrics(srv.Metrics())
		// The tail loop lives for the daemon's lifetime; ctx cancellation
		// (or a promotion's Stop) ends it.
		go func() {
			if err := fol.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("follower: tail loop: %v", err)
			}
		}()
	}
	handler := http.Handler(srv.Handler())
	if *withPprof {
		// Mount the profiling handlers explicitly on a wrapper mux
		// instead of serving http.DefaultServeMux, so -pprof adds
		// exactly these five routes and nothing any other package may
		// have registered globally.
		mux := http.NewServeMux()
		mux.Handle("/", srv.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	if *warm != "" {
		specs, err := parseWarm(*warm, d)
		if err != nil {
			return err
		}
		for _, sp := range specs {
			// Stay interruptible while warming: NotifyContext swallows
			// the default signal handling, so a SIGTERM during a long
			// warm sequence must be observed here, not only after the
			// listener is up.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("interrupted during warm-up: %w", err)
			}
			t0 := time.Now()
			if err := backend.Warm(sp.k, sp.r); err != nil {
				return fmt.Errorf("warm %d:%g: %w", sp.k, sp.r, err)
			}
			fmt.Fprintf(stdout, "warmed (k=%d, r=%.4f) in %v\n", sp.k, sp.r, time.Since(t0).Round(time.Millisecond))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	mode := "static"
	switch {
	case fol != nil:
		mode = "follower"
	case *dynamic:
		mode = "dynamic"
	}
	g := backend.Graph()
	fmt.Fprintf(stdout, "serving %s (%d vertices, %d edges, %s engine)\n", name, g.N(), g.M(), mode)
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
serve:
	for {
		select {
		case err := <-errc:
			return err // listener failed before shutdown was requested
		case <-usr1:
			// A checkpoint failure while serving is logged, not fatal:
			// the daemon keeps answering queries and the previous
			// checkpoint file stays intact (atomic rename).
			if *snapSave == "" {
				fmt.Fprintln(stdout, "SIGUSR1 ignored: no -snapshot-save path configured")
				continue
			}
			if err := writeCheckpoint(stdout, backend, journal, *snapSave); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		case <-ctx.Done():
			break serve
		}
	}
	if err := emit(stdout, "shutting down: draining in-flight queries\n"); err != nil {
		return err
	}
	// The drain must outlive ctx (already cancelled — that is why we are
	// here), so detach explicitly instead of minting a fresh root.
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if *snapSave != "" {
		// The final checkpoint runs after the drain, so it captures
		// every committed update; a write failure here must surface as
		// a non-zero exit, or a supervisor would restart from a stale
		// checkpoint without anyone noticing.
		if err := writeCheckpoint(stdout, backend, journal, *snapSave); err != nil {
			return fmt.Errorf("shutdown checkpoint: %w", err)
		}
	}
	return emit(stdout, "bye\n")
}

// emit writes one log line, surfacing the write error: the shutdown
// path treats a broken stdout (closed pipe under a supervisor) as a
// reportable failure instead of silently dropping the drain record.
func emit(w io.Writer, format string, args ...any) error {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		return fmt.Errorf("write log: %w", err)
	}
	return nil
}

// openBackend resolves the engine source: an engine snapshot, or a
// dataset (preset or file) built from scratch. It returns the backend,
// the dataset when one was loaded (nil for snapshots; -warm then needs
// explicit k:r settings), and the serving name for /v1/stats.
func openBackend(stdout io.Writer, snapLoad, data, load string, dynamic bool) (server.Backend, *dataset.Dataset, string, error) {
	if snapLoad != "" {
		if data != "" || load != "" {
			return nil, nil, "", fmt.Errorf("use -snapshot or -data/-load, not both")
		}
		f, err := os.Open(snapLoad)
		if err != nil {
			return nil, nil, "", err
		}
		defer f.Close()
		t0 := time.Now()
		var backend server.Backend
		if dynamic {
			deng, err := krcore.LoadDynamicEngine(f)
			if err != nil {
				return nil, nil, "", fmt.Errorf("load snapshot %s: %w", snapLoad, err)
			}
			fmt.Fprintf(stdout, "loaded dynamic snapshot %s in %v (journal offset %d)\n",
				snapLoad, time.Since(t0).Round(time.Microsecond), deng.JournalOffset())
			backend = deng
		} else {
			eng, err := krcore.LoadEngine(f)
			if err != nil {
				return nil, nil, "", fmt.Errorf("load snapshot %s: %w", snapLoad, err)
			}
			st := eng.Stats()
			fmt.Fprintf(stdout, "loaded snapshot %s in %v (%d thresholds, %d prepared settings)\n",
				snapLoad, time.Since(t0).Round(time.Microsecond), st.Thresholds, st.Prepared)
			backend = eng
		}
		return backend, nil, filepath.Base(snapLoad), nil
	}

	d, err := dataset.Open(data, load)
	if err != nil {
		return nil, nil, "", err
	}
	if dynamic {
		attrs, err := updates.Attrs(d)
		if err != nil {
			return nil, nil, "", err
		}
		deng, err := krcore.NewDynamicEngine(d.Graph, attrs)
		if err != nil {
			return nil, nil, "", err
		}
		return deng, d, d.Name, nil
	}
	return krcore.NewEngine(d.Graph, d.Metric()), d, d.Name, nil
}

// writeCheckpoint persists the backend's snapshot atomically (temp
// file + sync + rename, see snapshot.WriteFileAtomic), so readers and
// crash restarts only ever see complete checkpoints. With a journal
// attached, the checkpoint also compacts it: operations the snapshot
// now contains are dropped, so crash-recovery replay cost stays
// proportional to the traffic since the last checkpoint.
func writeCheckpoint(stdout io.Writer, backend server.Backend, journal *updates.Journal, path string) error {
	s, ok := backend.(snapshotter)
	if !ok {
		return fmt.Errorf("backend %T cannot snapshot", backend)
	}
	t0 := time.Now()
	if journal != nil {
		deng := dynamicEngineOf(backend)
		if deng == nil {
			return fmt.Errorf("backend %T has a journal but no dynamic engine", backend)
		}
		dropped, err := updates.Compact(deng, journal, path)
		if err != nil {
			return err
		}
		return emit(stdout, "checkpoint saved to %s, journal compacted (%d ops dropped, %d in tail, %v)\n",
			path, dropped, journal.TailOps(), time.Since(t0).Round(time.Millisecond))
	}
	size, err := snapshot.WriteFileAtomic(path, s.SaveSnapshot)
	if err != nil {
		return err
	}
	return emit(stdout, "checkpoint saved to %s (%d bytes, %v)\n",
		path, size, time.Since(t0).Round(time.Millisecond))
}

// openJournal wires the daemon's write-ahead update journal: it opens
// (or creates) the file, replays the tail past the engine's committed
// offset — the crash-recovery path after a -snapshot restart — and
// registers the journal so every subsequent commit round appends to it
// before touching engine state.
func openJournal(stdout io.Writer, backend server.Backend, path string, dynamic bool) (*updates.Journal, error) {
	if path == "" {
		return nil, nil
	}
	if !dynamic {
		return nil, fmt.Errorf("-journal requires -dynamic")
	}
	deng, ok := backend.(*krcore.DynamicEngine)
	if !ok {
		return nil, fmt.Errorf("-journal: backend %T is not a dynamic engine", backend)
	}
	kind, err := updates.ParseKind(deng.AttributeKind())
	if err != nil {
		return nil, fmt.Errorf("-journal: %w", err)
	}
	j, err := updates.OpenJournal(path, kind)
	if err != nil {
		return nil, fmt.Errorf("-journal: %w", err)
	}
	tail, base, err := j.Tail()
	if err != nil {
		j.Close()
		return nil, fmt.Errorf("-journal: %w", err)
	}
	off := deng.JournalOffset()
	end := base + int64(len(tail.Ups))
	switch {
	case off < base:
		j.Close()
		return nil, fmt.Errorf("-journal: engine is at offset %d but the journal was compacted past it (base %d); start from the journal's companion snapshot", off, base)
	case off >= end:
		// The engine (typically restored from -snapshot) is at or past
		// everything the journal holds: nothing to replay, but the
		// journal must restart exactly at the engine's offset — a fresh
		// or fully-contained journal left at a lower base would record
		// subsequent commits under wrong absolute offsets, silently
		// misaligning crash recovery and every streaming follower.
		if off > base || len(tail.Ups) > 0 {
			if err := j.ResetTo(off); err != nil {
				j.Close()
				return nil, fmt.Errorf("-journal: align to engine offset: %w", err)
			}
			if err := emit(stdout, "journal aligned to engine offset %d\n", off); err != nil {
				j.Close()
				return nil, err
			}
		}
	default:
		t0 := time.Now()
		if _, err := tail.ReplayStreamFrom(deng, off-base, 256); err != nil {
			j.Close()
			return nil, fmt.Errorf("-journal: replay: %w", err)
		}
		if err := emit(stdout, "replayed %d journal ops in %v (offset %d -> %d)\n",
			end-off, time.Since(t0).Round(time.Millisecond), off, end); err != nil {
			j.Close()
			return nil, err
		}
	}
	deng.SetJournal(j)
	return j, nil
}

// dynamicEngineOf unwraps the serving backend's dynamic engine: the
// engine itself, or a follower's current engine.
func dynamicEngineOf(b server.Backend) *krcore.DynamicEngine {
	switch x := b.(type) {
	case *krcore.DynamicEngine:
		return x
	case *replica.Follower:
		return x.Engine()
	}
	return nil
}

// openFollower builds the -follow replication stack: it learns the
// leader's attribute kind, opens the local write-ahead journal (when
// -journal is set), and bootstraps from the leader's snapshot —
// retrying while the leader is still coming up.
func openFollower(ctx context.Context, stdout io.Writer, leader, journalPath string, pollWait time.Duration) (*replica.Follower, *updates.Journal, error) {
	const attempts = 60
	cl := client.New(leader)
	var j *updates.Journal
	if journalPath != "" {
		var kindName string
		err := retryStep(ctx, stdout, attempts, "fetch leader replication status", func() error {
			st, err := cl.Replication(ctx)
			if err != nil {
				return err
			}
			if st.Kind == "" {
				return fmt.Errorf("leader %s reports no attribute kind (static engine?)", leader)
			}
			kindName = st.Kind
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("-follow: %w", err)
		}
		kind, err := updates.ParseKind(kindName)
		if err != nil {
			return nil, nil, fmt.Errorf("-follow: %w", err)
		}
		if j, err = updates.OpenJournal(journalPath, kind); err != nil {
			return nil, nil, fmt.Errorf("-follow: %w", err)
		}
	}
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader:   leader,
		Client:   cl,
		Journal:  j,
		PollWait: pollWait,
	})
	if err != nil {
		if j != nil {
			j.Close()
		}
		return nil, nil, err
	}
	t0 := time.Now()
	if err := retryStep(ctx, stdout, attempts, "bootstrap from leader snapshot", func() error {
		return fol.Bootstrap(ctx)
	}); err != nil {
		if j != nil {
			j.Close()
		}
		return nil, nil, fmt.Errorf("-follow: %w", err)
	}
	if err := emit(stdout, "bootstrapped from %s in %v (journal offset %d)\n",
		leader, time.Since(t0).Round(time.Millisecond), fol.JournalOffset()); err != nil {
		if j != nil {
			j.Close()
		}
		return nil, nil, err
	}
	return fol, j, nil
}

// retryStep runs fn up to attempts times, a second apart, logging
// failures — the follower's leader may simply not be listening yet.
func retryStep(ctx context.Context, stdout io.Writer, attempts int, what string, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if i == 0 {
			fmt.Fprintf(stdout, "%s: retrying: %v\n", what, err)
		}
		t := time.NewTimer(time.Second)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return fmt.Errorf("%s: giving up after %d attempts: %w", what, attempts, err)
}

// runRouter serves the -route mode: no engine, just the fleet router
// (affinity read routing, leader write forwarding, failover) plus its
// own health and metrics endpoints.
func runRouter(ctx context.Context, stdout io.Writer, addr, leader, followers string, probe time.Duration, failAfter int, grace time.Duration) error {
	var fl []string
	for _, f := range strings.Split(followers, ",") {
		if f = strings.TrimSpace(f); f != "" {
			fl = append(fl, f)
		}
	}
	rt, err := replica.NewRouter(replica.RouterConfig{
		Leader:    leader,
		Followers: fl,
		Probe:     probe,
		FailAfter: failAfter,
		Logf:      log.Printf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "routing for leader %s and %d followers\n", leader, len(fl))
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	go func() {
		// Probe-loop lifetime is the daemon's; Run only returns on ctx.
		if err := rt.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("router: probe loop: %v", err)
		}
	}()
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if err := emit(stdout, "shutting down router\n"); err != nil {
		return err
	}
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return emit(stdout, "bye\n")
}

// warmSpec is one pre-built (k,r) setting.
type warmSpec struct {
	k int
	r float64
}

// parseWarm parses the -warm flag: a comma-separated list of "k" (the
// dataset's default threshold) or "k:r" items. d is nil for
// snapshot-loaded engines, where only explicit k:r items resolve.
func parseWarm(s string, d *dataset.Dataset) ([]warmSpec, error) {
	var (
		specs      []warmSpec
		defaultThr float64
		haveThr    bool
	)
	defThreshold := func() (float64, error) {
		if haveThr {
			return defaultThr, nil
		}
		if d == nil {
			return 0, fmt.Errorf("-warm %q: a snapshot has no default threshold; use k:r", s)
		}
		thr, err := d.DefaultThreshold()
		if err != nil {
			return 0, fmt.Errorf("-warm %q: %w; use k:r", s, err)
		}
		defaultThr, haveThr = thr, true
		return defaultThr, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ks, rs, hasR := strings.Cut(item, ":")
		k, err := strconv.Atoi(ks)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("-warm %q: bad k %q", s, ks)
		}
		var r float64
		if hasR {
			r, err = strconv.ParseFloat(rs, 64)
			if err != nil {
				return nil, fmt.Errorf("-warm %q: bad r %q", s, rs)
			}
		} else if r, err = defThreshold(); err != nil {
			return nil, err
		}
		specs = append(specs, warmSpec{k: k, r: r})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-warm %q: no settings", s)
	}
	return specs, nil
}
