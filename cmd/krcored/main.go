// Command krcored serves (k,r)-core queries over HTTP: it loads one
// attributed social network, builds the caching serving engine and
// exposes enumerate / enumerate-containing / find-maximum / warm /
// stats endpoints as JSON (see krcore/api for the wire format and
// krcore/client for the Go client). With -dynamic it serves the
// mutable engine instead and additionally accepts atomic update
// batches, so the graph can evolve under live query traffic.
//
// Usage:
//
//	krcored -data gowalla -warm 5
//	krcored -data brightkite -addr 127.0.0.1:8420 -concurrency 8
//	krcored -load mygraph.txt -dynamic -warm 4:12,5:12
//
//	curl -s localhost:8420/v1/enumerate -d '{"k":5,"r":10}'
//	curl -s localhost:8420/v1/stats
//
// The daemon answers every query under a per-request deadline and node
// budget (request fields, clamped by -max-timeout / -max-nodes), bounds
// concurrent searches with an admission-control semaphore (-concurrency,
// excess requests queue up to -queue-wait, then 429), and drains
// in-flight queries before exiting on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"krcore"
	"krcore/internal/dataset"
	"krcore/internal/updates"
	"krcore/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krcored: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes one daemon lifetime: it serves until ctx is cancelled
// (SIGINT/SIGTERM in production, the test harness otherwise), then
// drains in-flight queries and returns.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("krcored", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data        = fs.String("data", "", "preset dataset name (brightkite, gowalla, dblp, pokec)")
		load        = fs.String("load", "", "load a dataset file written by datagen")
		addr        = fs.String("addr", "127.0.0.1:8420", "listen address (host:port; port 0 picks a free port)")
		dynamic     = fs.Bool("dynamic", false, "serve the mutable engine and accept /v1/update batches")
		concurrency = fs.Int("concurrency", 4, "searches running at once (admission-control limit)")
		queue       = fs.Int("queue", 64, "requests allowed to wait for a search slot before 429")
		queueWait   = fs.Duration("queue-wait", 10*time.Second, "longest a queued request waits before 429")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request search deadline")
		maxTimeout  = fs.Duration("max-timeout", 2*time.Minute, "upper clamp on per-request deadlines")
		maxNodes    = fs.Int64("max-nodes", 0, "upper clamp on per-request search-node budgets (0 = unlimited)")
		parallelCap = fs.Int("parallel-cap", 8, "upper clamp on per-request worker counts")
		warm        = fs.String("warm", "", "comma-separated settings to pre-build: k (default threshold) or k:r")
		grace       = fs.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight queries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := dataset.Open(*data, *load)
	if err != nil {
		return err
	}
	var backend server.Backend
	if *dynamic {
		attrs, err := updates.Attrs(d)
		if err != nil {
			return err
		}
		deng, err := krcore.NewDynamicEngine(d.Graph, attrs)
		if err != nil {
			return err
		}
		backend = deng
	} else {
		backend = krcore.NewEngine(d.Graph, d.Metric())
	}

	srv, err := server.New(backend, server.Config{
		Dataset:        d.Name,
		MaxConcurrent:  *concurrency,
		MaxQueue:       *queue,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		MaxParallelism: *parallelCap,
	})
	if err != nil {
		return err
	}

	if *warm != "" {
		specs, err := parseWarm(*warm, d)
		if err != nil {
			return err
		}
		for _, sp := range specs {
			// Stay interruptible while warming: NotifyContext swallows
			// the default signal handling, so a SIGTERM during a long
			// warm sequence must be observed here, not only after the
			// listener is up.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("interrupted during warm-up: %w", err)
			}
			t0 := time.Now()
			if err := backend.Warm(sp.k, sp.r); err != nil {
				return fmt.Errorf("warm %d:%g: %w", sp.k, sp.r, err)
			}
			fmt.Fprintf(stdout, "warmed (k=%d, r=%.4f) in %v\n", sp.k, sp.r, time.Since(t0).Round(time.Millisecond))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	mode := "static"
	if *dynamic {
		mode = "dynamic"
	}
	g := backend.Graph()
	fmt.Fprintf(stdout, "serving %s (%d vertices, %d edges, %s engine)\n", d.Name, g.N(), g.M(), mode)
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "shutting down: draining in-flight queries")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "bye")
	return nil
}

// warmSpec is one pre-built (k,r) setting.
type warmSpec struct {
	k int
	r float64
}

// parseWarm parses the -warm flag: a comma-separated list of "k" (the
// dataset's default threshold) or "k:r" items.
func parseWarm(s string, d *dataset.Dataset) ([]warmSpec, error) {
	var (
		specs      []warmSpec
		defaultThr float64
		haveThr    bool
	)
	defThreshold := func() (float64, error) {
		if haveThr {
			return defaultThr, nil
		}
		thr, err := d.DefaultThreshold()
		if err != nil {
			return 0, fmt.Errorf("-warm %q: %w; use k:r", s, err)
		}
		defaultThr, haveThr = thr, true
		return defaultThr, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ks, rs, hasR := strings.Cut(item, ":")
		k, err := strconv.Atoi(ks)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("-warm %q: bad k %q", s, ks)
		}
		var r float64
		if hasR {
			r, err = strconv.ParseFloat(rs, 64)
			if err != nil {
				return nil, fmt.Errorf("-warm %q: bad r %q", s, rs)
			}
		} else if r, err = defThreshold(); err != nil {
			return nil, err
		}
		specs = append(specs, warmSpec{k: k, r: r})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-warm %q: no settings", s)
	}
	return specs, nil
}
