//go:build windows

package main

import "os"

// checkpointSignals is empty on Windows, which has no user signals;
// checkpoints are still written on the shutdown drain.
var checkpointSignals []os.Signal
