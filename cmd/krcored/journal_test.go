package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"krcore"
	"krcore/internal/dataset"
)

// TestDaemonJournalRecoveryAndCompaction walks the full journal
// lifecycle across three daemon lifetimes: write-ahead logging, crash
// recovery by tail replay, and checkpoint compaction.
func TestDaemonJournalRecoveryAndCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg, err := dataset.Preset("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	cfg.N = 150
	cfg.NumCommunities = 5
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	jPath := filepath.Join(dir, "updates.journal")
	ckpt := filepath.Join(dir, "checkpoint.snap")
	ctx := context.Background()

	// Lifetime 1: journaled daemon, no checkpoint — the journal is the
	// only durable record of the updates.
	c, shutdown := startDaemon(t, "-load", dataPath, "-dynamic", "-journal", jPath)
	for _, e := range [][2]int32{{0, 5}, {0, 10}, {1, 6}} {
		if _, err := c.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(e[0], e[1])}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DynamicEngine == nil || st.DynamicEngine.JournalOps != 3 || st.DynamicEngine.GroupCommits < 1 {
		t.Fatalf("journal not reflected in stats: %+v", st.DynamicEngine)
	}
	mAfter := st.M
	shutdown()

	// Lifetime 2: same dataset + journal — the 3 logged ops replay on
	// start (crash recovery), then a checkpoint compacts the journal.
	c, shutdown = startDaemon(t, "-load", dataPath, "-dynamic",
		"-journal", jPath, "-snapshot-save", ckpt, "-warm", "4:12")
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DynamicEngine.Updates != 3 || st.M != mAfter {
		t.Fatalf("journal replay lost updates: %+v (M=%d, want %d)", st.DynamicEngine, st.M, mAfter)
	}
	if _, err := c.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(2, 7)}); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DynamicEngine.JournalOps != 4 {
		t.Fatalf("journal tail = %d ops, want 4: %+v", st.DynamicEngine.JournalOps, st.DynamicEngine)
	}
	if st.DynamicEngine.PatchesIncremental+st.DynamicEngine.PatchesFull < 1 {
		t.Fatalf("no core-maintenance patches counted after a warmed update: %+v", st.DynamicEngine)
	}
	shutdown() // shutdown checkpoint compacts the journal

	// Lifetime 3: restart from the checkpoint + compacted journal — no
	// replay needed, empty tail, nothing lost.
	c, shutdown = startDaemon(t, "-snapshot", ckpt, "-dynamic", "-journal", jPath)
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DynamicEngine.Updates != 4 || st.DynamicEngine.JournalOps != 0 {
		t.Fatalf("post-compaction restart: %+v", st.DynamicEngine)
	}
	shutdown()
}

// TestDaemonJournalFlagErrors rejects invalid journal configurations.
func TestDaemonJournalFlagErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-data", "brightkite", "-journal", filepath.Join(dir, "j")}, // without -dynamic
		{"-data", "brightkite", "-dynamic", "-journal", filepath.Join(dir, "nosuchdir", "sub", "j")},
	}
	for _, args := range cases {
		var out bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := run(ctx, args, &out, &out)
		cancel()
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
