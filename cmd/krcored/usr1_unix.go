//go:build !windows

package main

import (
	"os"
	"syscall"
)

// checkpointSignals are the signals that trigger a live checkpoint
// write to the -snapshot-save path: SIGUSR1 everywhere it exists.
var checkpointSignals = []os.Signal{syscall.SIGUSR1}
