package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"krcore"
	"krcore/client"
	"krcore/internal/dataset"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// daemon's stdout while it runs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`listening on http://([^\s]+)`)

// startDaemon runs the daemon in-process and returns a client bound to
// its ephemeral port plus a shutdown func that asserts a clean drain.
func startDaemon(t *testing.T, args ...string) (*client.Client, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, &out, &out) }()

	deadline := time.Now().Add(30 * time.Second)
	var addr string
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			cancel()
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdown := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon shutdown: %v\n%s", err, out.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon did not drain:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "draining in-flight queries") {
			t.Fatalf("no graceful drain logged:\n%s", out.String())
		}
	}
	return client.New("http://" + addr), shutdown
}

func TestDaemonSmoke(t *testing.T) {
	c, shutdown := startDaemon(t,
		"-data", "brightkite", "-addr", "127.0.0.1:0", "-warm", "5,4:25", "-concurrency", "2")
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "brightkite" || st.Engine.Prepared != 2 || st.Dynamic {
		t.Fatalf("bad stats after warm: %+v", st)
	}

	// Round-trip a warmed query and compare with an in-process engine.
	d, err := dataset.Load("brightkite")
	if err != nil {
		t.Fatal(err)
	}
	eng := krcore.NewEngine(d.Graph, d.Metric())
	want, err := eng.Enumerate(5, 10, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(ctx, 5, 10, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatal("daemon result differs from in-process engine")
	}
	// The warmed setting was a cache hit.
	st2, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Engine.Hits < 1 {
		t.Fatalf("warmed query was not a hit: %+v", st2.Engine)
	}
	shutdown()
}

func TestDaemonDynamic(t *testing.T) {
	dir := t.TempDir()
	cfg, err := dataset.Preset("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	cfg.N = 200
	cfg.NumCommunities = 6
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c, shutdown := startDaemon(t, "-load", path, "-dynamic", "-addr", "127.0.0.1:0", "-warm", "4:12")
	ctx := context.Background()
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Dynamic || st.N != 200 {
		t.Fatalf("bad dynamic stats: %+v", st)
	}
	if _, err := c.ApplyBatch(ctx, []krcore.Update{
		krcore.AddVertexUpdate(),
		krcore.AddEdgeUpdate(200, 0),
	}); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 201 || st.DynamicEngine == nil || st.DynamicEngine.Updates != 2 {
		t.Fatalf("update not visible: %+v", st)
	}
	if _, err := c.Enumerate(ctx, 4, 12, client.Options{}); err != nil {
		t.Fatal(err)
	}
	shutdown()
}

func TestDaemonErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("zz nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                                                // no dataset
		{"-data", "gowalla", "-load", bad},                // both sources
		{"-data", "nosuch"},                               // unknown preset
		{"-load", filepath.Join(dir, "no")},               // missing file
		{"-load", bad},                                    // unparseable dataset
		{"-data", "brightkite", "-warm", "x"},             // bad warm k
		{"-data", "brightkite", "-warm", "5:x"},           // bad warm r
		{"-data", "brightkite", "-warm", ","},             // empty warm
		{"-data", "brightkite", "-warm", "0:10"},          // k < 1
		{"-data", "brightkite", "-addr", "nonsense:port"}, // unlistenable
		{"-badflag"},                                      // flag error
	}
	for _, args := range cases {
		var out bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := run(ctx, args, &out, &out)
		cancel()
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseWarmDefaults(t *testing.T) {
	d, err := dataset.Load("brightkite")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := parseWarm("5, 6:42.5", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0] != (warmSpec{k: 5, r: 10}) || specs[1] != (warmSpec{k: 6, r: 42.5}) {
		t.Fatalf("bad specs: %+v", specs)
	}
	// Keyword presets resolve their default threshold via permille.
	cfg, err := dataset.Preset("dblp")
	if err != nil {
		t.Fatal(err)
	}
	cfg.N = 300
	cfg.NumCommunities = 8
	dk, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err = parseWarm("3", dk)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].k != 3 || specs[0].r <= 0 || specs[0].r > 1 {
		t.Fatalf("bad permille default: %+v", specs)
	}
}
