package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"krcore"
	"krcore/api"
	"krcore/client"
	"krcore/internal/attr"
	"krcore/internal/dataset"
	"krcore/internal/updates"
)

// startNode is startDaemon for replication topologies: it also returns
// the daemon's base URL (a follower or router needs the leader's
// address on its command line) and the captured log, and its shutdown
// asserts only the universal clean-exit marker — a router drains
// differently from an engine node.
func startNode(t *testing.T, args ...string) (string, *client.Client, *syncBuffer, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	// Every node picks an ephemeral port: topologies start several
	// daemons in one process.
	args = append(args, "-addr", "127.0.0.1:0")
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, out, out) }()

	deadline := time.Now().Add(60 * time.Second)
	var addr string
	for addr == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			cancel()
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	url := "http://" + addr
	shutdown := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon shutdown: %v\n%s", err, out.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon did not drain:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "bye") {
			t.Fatalf("no clean exit logged:\n%s", out.String())
		}
	}
	return url, client.New(url), out, shutdown
}

// writeSmallDataset generates a small geo dataset file the daemons can
// -load in milliseconds.
func writeSmallDataset(t *testing.T, dir string) string {
	t.Helper()
	cfg, err := dataset.Preset("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	cfg.N = 150
	cfg.NumCommunities = 5
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitReplication polls a node's replication status until cond accepts
// it.
func waitReplication(t *testing.T, c *client.Client, what string, cond func(*api.ReplicationStatus) bool) *api.ReplicationStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Replication(context.Background())
		if err == nil && cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: timed out (last status %+v, err %v)", what, st, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonFollowerMode wires a real leader and follower daemon pair
// over TCP: the follower bootstraps from the leader's snapshot, tails
// its journal to convergence, serves bit-identical reads, gates writes
// with a leader redirect, and flips writable on promotion.
func TestDaemonFollowerMode(t *testing.T) {
	dir := t.TempDir()
	dataPath := writeSmallDataset(t, dir)
	ctx := context.Background()

	leaderURL, lc, _, stopLeader := startNode(t,
		"-load", dataPath, "-dynamic", "-journal", filepath.Join(dir, "leader.journal"))
	defer stopLeader()

	// Updates committed before the follower exists arrive via the
	// bootstrap snapshot; updates committed after it arrive via the
	// journal tail.
	if _, err := lc.ApplyBatch(ctx, []krcore.Update{
		krcore.AddEdgeUpdate(0, 7), krcore.AddEdgeUpdate(0, 9),
	}); err != nil {
		t.Fatal(err)
	}

	_, fc, fout, stopFollower := startNode(t,
		"-follow", leaderURL, "-journal", filepath.Join(dir, "follower.journal"), "-poll-wait", "100ms")
	defer stopFollower()
	if !strings.Contains(fout.String(), "bootstrapped from "+leaderURL) {
		t.Fatalf("follower never logged its bootstrap:\n%s", fout.String())
	}

	if _, err := lc.ApplyBatch(ctx, []krcore.Update{
		krcore.AddEdgeUpdate(1, 8), krcore.SetAttributesUpdate(3, krcore.VertexAttributes{X: 1, Y: 2}),
	}); err != nil {
		t.Fatal(err)
	}
	lst, err := lc.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Role != api.RoleLeader || lst.JournalEnd != 4 {
		t.Fatalf("leader status %+v, want leader at journal end 4", lst)
	}

	fst := waitReplication(t, fc, "follower convergence", func(st *api.ReplicationStatus) bool {
		return st.AppliedOffset == lst.JournalEnd
	})
	if fst.Role != api.RoleFollower || fst.Leader != leaderURL || fst.Kind != "geo" {
		t.Fatalf("follower status %+v, want follower of %s serving geo", fst, leaderURL)
	}

	// Bit-identical reads at the converged offset.
	want, err := lc.Enumerate(ctx, 4, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.Enumerate(ctx, 4, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatal("follower enumerate differs from leader")
	}

	// The write gate redirects to the leader — and stays countable on
	// its own metric series, not the error one.
	_, err = fc.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(2, 9)})
	if leader, ok := client.IsReadOnly(err); !ok || leader != leaderURL {
		t.Fatalf("gated write returned %v (leader=%q ok=%v)", err, leader, ok)
	}
	metricsText, err := fc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"krcored_write_redirects_total 1",
		"krcored_server_errors_total 0",
		"krcored_replication_writable 0",
		"krcored_follower_bootstraps_total 1",
	} {
		if !strings.Contains(metricsText, line) {
			t.Fatalf("follower /metrics missing %q:\n%s", line, metricsText)
		}
	}

	// Promotion stops the tail loop and opens the gate: the daemon is
	// now a writable leader with its own journal.
	pr, err := fc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Role != api.RoleLeader || pr.AppliedOffset != lst.JournalEnd {
		t.Fatalf("promote response %+v, want leader at offset %d", pr, lst.JournalEnd)
	}
	if _, err := fc.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(2, 9)}); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	fst, err = fc.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Role != api.RoleLeader || fst.JournalEnd != lst.JournalEnd+1 {
		t.Fatalf("promoted status %+v, want leader journal end %d", fst, lst.JournalEnd+1)
	}
}

// TestDaemonRouterMode runs a three-daemon fleet — leader, follower,
// router — and drives both halves of the routing contract through the
// router's own port: reads answer from the fleet, writes land on the
// leader and replicate back out to the follower.
func TestDaemonRouterMode(t *testing.T) {
	dir := t.TempDir()
	dataPath := writeSmallDataset(t, dir)
	ctx := context.Background()

	leaderURL, lc, _, stopLeader := startNode(t,
		"-load", dataPath, "-dynamic", "-journal", filepath.Join(dir, "leader.journal"))
	defer stopLeader()
	folURL, fc, _, stopFollower := startNode(t,
		"-follow", leaderURL, "-journal", filepath.Join(dir, "follower.journal"), "-poll-wait", "100ms")
	defer stopFollower()
	_, rc, rout, stopRouter := startNode(t,
		"-route", "-leader", leaderURL, "-followers", folURL, "-probe", "250ms")
	defer stopRouter()
	if !strings.Contains(rout.String(), "routing for leader "+leaderURL+" and 1 followers") {
		t.Fatalf("router banner missing:\n%s", rout.String())
	}

	if err := rc.Health(ctx); err != nil {
		t.Fatal(err)
	}
	rst, err := rc.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Role != "router" || rst.Leader != leaderURL {
		t.Fatalf("router status %+v, want router fronting %s", rst, leaderURL)
	}

	// A write through the router lands on the leader's journal and the
	// follower tails it back.
	if _, err := rc.ApplyBatch(ctx, []krcore.Update{
		krcore.AddEdgeUpdate(0, 7), krcore.AddEdgeUpdate(1, 8),
	}); err != nil {
		t.Fatal(err)
	}
	lst, err := lc.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lst.JournalEnd != 2 {
		t.Fatalf("leader journal end %d after routed write, want 2", lst.JournalEnd)
	}
	waitReplication(t, fc, "follower tails routed write", func(st *api.ReplicationStatus) bool {
		return st.AppliedOffset == 2
	})

	// Routed reads agree with the leader wherever they land.
	want, err := lc.Enumerate(ctx, 4, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := rc.Enumerate(ctx, 4, 25, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
			t.Fatalf("routed read %d differs from leader", i)
		}
	}
}

// TestDaemonJournalAlignedToSnapshot pins the lost-journal restart: an
// engine restored from a checkpoint taken at offset N, paired with a
// fresh (empty) journal, must realign the journal to base N — or every
// subsequent commit would be recorded under wrong absolute offsets and
// silently corrupt crash recovery and follower streams.
func TestDaemonJournalAlignedToSnapshot(t *testing.T) {
	dir := t.TempDir()
	dataPath := writeSmallDataset(t, dir)
	ckpt := filepath.Join(dir, "checkpoint.snap")
	ctx := context.Background()

	// Lifetime 1: commit three ops; the shutdown checkpoint lands at
	// offset 3.
	c, shutdown := startDaemon(t, "-load", dataPath, "-dynamic",
		"-journal", filepath.Join(dir, "first.journal"), "-snapshot-save", ckpt)
	for _, e := range [][2]int32{{0, 5}, {0, 10}, {1, 6}} {
		if _, err := c.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(e[0], e[1])}); err != nil {
			t.Fatal(err)
		}
	}
	shutdown()

	// Lifetime 2: the snapshot survives but the journal file is gone
	// (a new path stands in for the lost file).
	freshJournal := filepath.Join(dir, "fresh.journal")
	_, c2, out2, shutdown2 := startNode(t, "-snapshot", ckpt, "-dynamic", "-journal", freshJournal)
	if !strings.Contains(out2.String(), "journal aligned to engine offset 3") {
		t.Fatalf("no realignment logged:\n%s", out2.String())
	}
	st, err := c2.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppliedOffset != 3 || st.JournalBase != 3 || st.JournalEnd != 3 {
		t.Fatalf("post-restart status %+v, want base=end=offset=3", st)
	}
	if _, err := c2.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(2, 9)}); err != nil {
		t.Fatal(err)
	}
	shutdown2()

	// The realigned journal carries the new commit at absolute offset
	// 3 — the file itself, not just the serving status.
	j, err := updates.OpenJournal(freshJournal, attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Base() != 3 || j.End() != 4 {
		t.Fatalf("realigned journal spans [%d,%d), want [3,4)", j.Base(), j.End())
	}
}

// TestDaemonReplicationFlagConflicts pins the fast-fail paths: the
// flag combinations that cannot describe a working node are rejected
// before any engine work starts.
func TestDaemonReplicationFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-route"}, "-route requires -leader"},
		{[]string{"-follow", "http://127.0.0.1:1", "-data", "brightkite"}, "drop -data/-load/-snapshot"},
		{[]string{"-follow", "http://127.0.0.1:1", "-snapshot", "x.snap"}, "drop -data/-load/-snapshot"},
	} {
		var out syncBuffer
		err := run(context.Background(), tc.args, &out, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}
