package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"krcore"
	"krcore/client"
)

// TestDaemonShutdownCheckpointRestart is the daemon-level warm-start
// cycle: a daemon with -snapshot-save writes its checkpoint after the
// shutdown drain, and a second daemon started from that checkpoint
// serves the warmed setting as a pure cache hit with identical
// results.
func TestDaemonShutdownCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.snap")
	ctx := context.Background()

	c, shutdown := startDaemon(t,
		"-data", "brightkite", "-addr", "127.0.0.1:0", "-warm", "4:25", "-snapshot-save", ck)
	want, err := c.Enumerate(ctx, 4, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shutdown() // drains, then writes the checkpoint
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("shutdown left no checkpoint: %v", err)
	}

	c2, shutdown2 := startDaemon(t, "-snapshot", ck, "-addr", "127.0.0.1:0")
	defer shutdown2()
	st, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "ck.snap" || st.Engine.Prepared != 1 || st.Engine.Thresholds != 1 {
		t.Fatalf("restarted stats: %+v", st)
	}
	got, err := c2.Enumerate(ctx, 4, 25, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatal("restarted daemon answers differently from the original")
	}
	st, err = c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Hits != 1 || st.Engine.Misses != 0 {
		t.Fatalf("restored setting was not a pure cache hit: %+v", st.Engine)
	}
}

// TestDaemonDynamicCheckpointRestart checks a dynamic daemon's
// checkpoint carries committed updates and the journal offset across a
// restart.
func TestDaemonDynamicCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.snap")
	ctx := context.Background()

	c, shutdown := startDaemon(t,
		"-data", "brightkite", "-dynamic", "-addr", "127.0.0.1:0", "-warm", "4:25", "-snapshot-save", ck)
	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyBatch(ctx, []krcore.Update{
		krcore.AddVertexUpdate(),
		krcore.AddEdgeUpdate(int32(before.N), 0),
		krcore.AddEdgeUpdate(int32(before.N), 1),
	}); err != nil {
		t.Fatal(err)
	}
	shutdown()

	// The restarted daemon resumes from the checkpoint's journal
	// offset and serves the mutated graph.
	c2, shutdown2 := startDaemon(t, "-snapshot", ck, "-dynamic", "-addr", "127.0.0.1:0")
	defer shutdown2()
	st, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != before.N+1 || !st.Dynamic {
		t.Fatalf("restart lost committed updates: n=%d want %d, dynamic=%v", st.N, before.N+1, st.Dynamic)
	}
	if st.DynamicEngine == nil || st.DynamicEngine.Updates != 3 {
		t.Fatalf("journal offset lost: %+v", st.DynamicEngine)
	}
}

// TestDaemonSnapshotFlagErrors covers startup validation of the
// snapshot flags.
func TestDaemonSnapshotFlagErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-snapshot", filepath.Join(dir, "none.snap")},                           // missing file
		{"-snapshot", filepath.Join(dir, "none.snap"), "-data", "brightkite"},    // two sources
		{"-data", "brightkite", "-snapshot-save", filepath.Join(dir, "no", "x")}, // missing checkpoint dir
		{"-snapshot", filepath.Join(dir, "none.snap"), "-load", "x.txt"},         // two sources
	}
	for _, args := range cases {
		var out syncBuffer
		if err := run(context.Background(), args, &out, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}

	// A dataset file is not a snapshot: -snapshot must reject it with a
	// format error.
	data := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(data, []byte("d tiny 2 2\nv 0 0 0\nv 1 1 1\ne 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	err := run(context.Background(), []string{"-snapshot", data}, &out, &out)
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("dataset file accepted as snapshot: %v", err)
	}
}

// TestDaemonShutdownCheckpointFailureExitsNonZero checks the audited
// shutdown path: when the final checkpoint cannot be written (its
// directory vanished mid-run), the daemon exits with an error instead
// of silently dropping the state.
func TestDaemonShutdownCheckpointFailureExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "ckdir")
	if err := os.Mkdir(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(ckDir, "ck.snap")
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-data", "brightkite", "-addr", "127.0.0.1:0", "-snapshot-save", ck}, &out, &out)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for addrRe.FindStringSubmatch(out.String()) == nil {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := os.RemoveAll(ckDir); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "shutdown checkpoint") {
			t.Fatalf("checkpoint write failure not surfaced: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}
}
