package krcore

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"krcore/internal/kcore"
)

// ---------------------------------------------------------------------
// Differential test harness: apply random mutation sequences to a
// DynamicEngine and assert after every step that Enumerate/FindMaximum
// results are bit-identical (same cores, same sizes) to a fresh
// NewEngine built from the mutated graph, across Euclidean and Jaccard
// metrics and several (k,r) presets. The race CI job runs this under
// -race.
// ---------------------------------------------------------------------

// diffSteps is the mutation count per metric; the acceptance bar is
// >= 500 randomized steps (reduced under -short for quick local runs).
func diffSteps(t *testing.T) int {
	if testing.Short() {
		return 120
	}
	return 500
}

// dynMirror is the ground truth a DynamicEngine run is checked against:
// the plain edge set and per-vertex attributes, rebuilt into a fresh
// Engine after every step.
type dynMirror struct {
	n     int
	edges map[[2]int32]bool
	attrs []VertexAttributes
}

func normPair(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// apply replicates ApplyBatch's semantics (in-order, last op wins) on
// the mirror. Only called for batches the engine accepted.
func (m *dynMirror) apply(ups []Update) {
	for _, up := range ups {
		switch up.Op {
		case OpAddVertex:
			m.n++
			m.attrs = append(m.attrs, VertexAttributes{})
		case OpAddEdge:
			m.edges[normPair(up.U, up.V)] = true
		case OpRemoveEdge:
			delete(m.edges, normPair(up.U, up.V))
		case OpSetAttributes:
			m.attrs[up.U] = up.Attrs
		}
	}
}

// graph builds the mirror's current graph.
func (m *dynMirror) graph() *Graph {
	b := NewGraphBuilder(m.n)
	for e := range m.edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// sortedEdges returns the mirror's edges in deterministic order (map
// iteration is randomized; random picks must come from the rng alone).
func (m *dynMirror) sortedEdges() [][2]int32 {
	out := make([][2]int32, 0, len(m.edges))
	for e := range m.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// diffMetric describes one metric flavour of the harness. Attributes
// are drawn per cluster (the same clusters the edge generator favours),
// so dense similar groups — and therefore non-trivial cores — exist.
type diffMetric struct {
	name    string
	presets []struct {
		k int
		r float64
	}
	newStore func() DynamicAttributes
	randAttr func(rng *rand.Rand, cluster int) VertexAttributes
}

// diffClusters is the number of planted clusters in the harness
// instances; vertex u belongs to cluster u % diffClusters.
const diffClusters = 4

// diffMetrics returns the Euclidean and Jaccard harness configurations.
func diffMetrics() []diffMetric {
	geoAttr := func(rng *rand.Rand, cluster int) VertexAttributes {
		c := [][2]float64{{0, 0}, {10, 0}, {5, 9}, {35, 35}}[cluster%4]
		return VertexAttributes{X: c[0] + rng.NormFloat64()*2.5, Y: c[1] + rng.NormFloat64()*2.5}
	}
	kwAttr := func(rng *rand.Rand, cluster int) VertexAttributes {
		topic := int32(cluster%4) * 8
		keys := make([]int32, 0, 4)
		for len(keys) < 4 {
			if rng.Float64() < 0.8 {
				keys = append(keys, topic+int32(rng.Intn(8)))
			} else {
				keys = append(keys, int32(rng.Intn(32)))
			}
		}
		return VertexAttributes{Keys: keys}
	}
	return []diffMetric{
		{
			name: "euclidean",
			presets: []struct {
				k int
				r float64
			}{{2, 5}, {3, 9}, {4, 16}},
			newStore: func() DynamicAttributes { return NewGeoAttributes(0) },
			randAttr: geoAttr,
		},
		{
			name: "jaccard",
			presets: []struct {
				k int
				r float64
			}{{2, 0.5}, {3, 0.3}, {2, 0.2}},
			newStore: func() DynamicAttributes { return NewKeywordAttributes(0) },
			randAttr: kwAttr,
		},
	}
}

// buildDiffInstance seeds the mirror with a clustered random instance.
func buildDiffInstance(cfg diffMetric, rng *rand.Rand) *dynMirror {
	const n = 56
	m := &dynMirror{n: n, edges: map[[2]int32]bool{}, attrs: make([]VertexAttributes, n)}
	for u := 0; u < n; u++ {
		m.attrs[u] = cfg.randAttr(rng, u%diffClusters)
	}
	for i := 0; i < 3*n; i++ {
		u := int32(rng.Intn(n))
		// Bias endpoints toward the same residue class so dense similar
		// clusters (and therefore non-trivial cores) exist.
		v := int32((int(u) + 4*(1+rng.Intn(n/4))) % n)
		if rng.Intn(4) == 0 {
			v = int32(rng.Intn(n))
		}
		if u != v {
			m.edges[normPair(u, v)] = true
		}
	}
	return m
}

// freshEngine builds a from-scratch Engine over the mirror state.
func freshEngine(cfg diffMetric, m *dynMirror) *Engine {
	store := cfg.newStore()
	store.Grow(m.n)
	for u := 0; u < m.n; u++ {
		store.SetAttributes(int32(u), m.attrs[u])
	}
	return NewEngine(m.graph(), store.Metric())
}

// randomBatch draws the next mutation batch for the harness.
func randomBatch(cfg diffMetric, m *dynMirror, rng *rand.Rand) []Update {
	edgeOp := func() Update {
		roll := rng.Intn(100)
		switch {
		case roll < 55: // add a (mostly clustered) edge; duplicates allowed
			u := int32(rng.Intn(m.n))
			v := int32((int(u) + 4*(1+rng.Intn(m.n/4))) % m.n)
			if rng.Intn(4) == 0 {
				v = int32(rng.Intn(m.n))
			}
			if u == v {
				v = (v + 1) % int32(m.n)
			}
			return AddEdgeUpdate(u, v)
		case roll < 90: // remove an existing edge when possible
			if es := m.sortedEdges(); len(es) > 0 {
				e := es[rng.Intn(len(es))]
				return RemoveEdgeUpdate(e[0], e[1])
			}
			fallthrough
		default: // remove a random (often missing) edge: a no-op is legal
			u := int32(rng.Intn(m.n))
			v := (u + 1 + int32(rng.Intn(m.n-1))) % int32(m.n)
			return RemoveEdgeUpdate(u, v)
		}
	}
	churn := func() Update {
		u := rng.Intn(m.n)
		cluster := u % diffClusters
		if rng.Intn(5) == 0 {
			cluster = rng.Intn(diffClusters) // the vertex moves community
		}
		return SetAttributesUpdate(int32(u), cfg.randAttr(rng, cluster))
	}
	switch roll := rng.Intn(100); {
	case roll < 60:
		return []Update{edgeOp()}
	case roll < 75: // attribute churn
		return []Update{churn()}
	case roll < 83 && m.n < 90: // grow: new vertex wired into a cluster
		nv := int32(m.n)
		return []Update{
			AddVertexUpdate(),
			SetAttributesUpdate(nv, cfg.randAttr(rng, int(nv)%diffClusters)),
			AddEdgeUpdate(nv, int32(rng.Intn(m.n))),
			AddEdgeUpdate(nv, int32(rng.Intn(m.n))),
		}
	default: // mixed batch
		ups := []Update{edgeOp(), edgeOp()}
		if rng.Intn(2) == 0 {
			ups = append(ups, churn())
		}
		return ups
	}
}

// assertMaintainedCores asserts that every fully built (k,r) cache
// entry's maintained per-vertex core numbers are bit-identical to a
// fresh linear peeling of its filtered graph — the invariant the
// incremental repair path (kcore.Repair via core.PatchPreparedDelta)
// must preserve across every update.
func assertMaintainedCores(t *testing.T, d *DynamicEngine, label string) {
	t.Helper()
	d.mu.RLock()
	e := d.eng
	d.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	checked := 0
	for key, ent := range e.byKR {
		if !ent.ready.Load() || ent.err != nil || ent.pr == nil {
			continue
		}
		re := e.byR[key.r]
		if re == nil || !re.ready.Load() {
			continue
		}
		want := kcore.Decompose32(re.filtered)
		if fmt.Sprint(ent.pr.CoreNumbers()) != fmt.Sprint(want) {
			t.Fatalf("%s: (k=%d, r=%g): maintained core numbers diverged from a fresh peel:\n got %v\nwant %v",
				label, key.k, key.r, ent.pr.CoreNumbers(), want)
		}
		checked++
	}
	if checked == 0 && len(e.byKR) > 0 {
		t.Fatalf("%s: no built (k,r) entry to check", label)
	}
}

// sameResult asserts bit-identical cores and summary statistics.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
		t.Fatalf("%s: cores diverged:\ndynamic: %v\nfresh:   %v", label, got.Cores, want.Cores)
	}
	gs, ws := got.Summarize(), want.Summarize()
	if gs.Count != ws.Count || gs.MaxSize != ws.MaxSize || gs.AvgSize != ws.AvgSize {
		t.Fatalf("%s: stats diverged: dynamic %+v, fresh %+v", label, gs, ws)
	}
}

// TestDynamicEngineDifferential is the harness entry point: one
// subtest per metric, >= 500 randomized mutation steps each, full
// result comparison against from-scratch rebuilds after every step.
func TestDynamicEngineDifferential(t *testing.T) {
	for _, cfg := range diffMetrics() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(2026))
			m := buildDiffInstance(cfg, rng)
			store := cfg.newStore()
			store.Grow(m.n)
			for u := 0; u < m.n; u++ {
				store.SetAttributes(int32(u), m.attrs[u])
			}
			eng, err := NewDynamicEngine(m.graph(), store)
			if err != nil {
				t.Fatal(err)
			}
			steps := diffSteps(t)
			for step := 0; step < steps; step++ {
				batch := randomBatch(cfg, m, rng)
				if err := eng.ApplyBatch(batch); err != nil {
					t.Fatalf("step %d: ApplyBatch(%v): %v", step, batch, err)
				}
				m.apply(batch)
				if eng.N() != m.n || eng.M() != len(m.edges) {
					t.Fatalf("step %d: engine N=%d M=%d, mirror N=%d M=%d",
						step, eng.N(), eng.M(), m.n, len(m.edges))
				}
				fresh := freshEngine(cfg, m)
				for _, p := range cfg.presets {
					label := fmt.Sprintf("step %d (k=%d, r=%g)", step, p.k, p.r)
					de, err := eng.Enumerate(p.k, p.r, EnumOptions{})
					if err != nil {
						t.Fatalf("%s: dynamic enum: %v", label, err)
					}
					fe, err := fresh.Enumerate(p.k, p.r, EnumOptions{})
					if err != nil {
						t.Fatalf("%s: fresh enum: %v", label, err)
					}
					sameResult(t, label+" enum", de, fe)
					dm, err := eng.FindMaximum(p.k, p.r, MaxOptions{})
					if err != nil {
						t.Fatalf("%s: dynamic max: %v", label, err)
					}
					fm, err := fresh.FindMaximum(p.k, p.r, MaxOptions{})
					if err != nil {
						t.Fatalf("%s: fresh max: %v", label, err)
					}
					sameResult(t, label+" max", dm, fm)
				}
				assertMaintainedCores(t, eng, fmt.Sprintf("step %d", step))
			}
			ds := eng.DynamicStats()
			if ds.Version == 0 || ds.Updates == 0 {
				t.Fatalf("no updates recorded: %+v", ds)
			}
			if ds.ComponentsReused == 0 || ds.IndexesKept == 0 {
				t.Fatalf("scoped invalidation never reused anything: %+v", ds)
			}
			if ds.PatchesIncremental == 0 {
				t.Fatalf("incremental core maintenance never ran: %+v", ds)
			}
			t.Logf("%s: %d steps, stats %+v", cfg.name, steps, ds)
		})
	}
}

// TestDynamicEngineValidation covers the mutation error paths: invalid
// updates must be rejected atomically, leaving the snapshot untouched.
func TestDynamicEngineValidation(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	geo := NewGeoAttributes(4)
	eng, err := NewDynamicEngine(b.Build(), geo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamicEngine(nil, geo); err == nil {
		t.Fatal("nil graph must be rejected")
	}
	if _, err := NewDynamicEngine(b.Build(), nil); err == nil {
		t.Fatal("nil attribute store must be rejected")
	}
	if err := eng.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if err := eng.AddEdge(0, 9); err == nil {
		t.Fatal("out-of-range endpoint must be rejected")
	}
	if err := eng.RemoveEdge(-1, 0); err == nil {
		t.Fatal("negative endpoint must be rejected")
	}
	if err := eng.SetAttributes(17, VertexAttributes{}); err == nil {
		t.Fatal("out-of-range attribute vertex must be rejected")
	}
	if err := eng.ApplyBatch([]Update{{Op: UpdateOp(99)}}); err == nil {
		t.Fatal("unknown op must be rejected")
	}
	// A batch failing halfway must not apply its earlier updates.
	before := eng.M()
	if err := eng.ApplyBatch([]Update{AddEdgeUpdate(2, 3), AddEdgeUpdate(5, 6)}); err == nil {
		t.Fatal("batch with invalid op must fail")
	}
	if eng.M() != before {
		t.Fatal("failed batch partially applied")
	}
	// Empty batches and no-op updates succeed without a new version.
	if err := eng.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddEdge(0, 1); err != nil { // already present
		t.Fatal(err)
	}
	if err := eng.RemoveEdge(2, 3); err != nil { // already absent
		t.Fatal(err)
	}
	if ds := eng.DynamicStats(); ds.Version != 0 {
		t.Fatalf("no-op updates published a version: %+v", ds)
	}
	// AddVertex returns the fresh id and grows the attribute store.
	id, err := eng.AddVertex()
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 || eng.N() != 5 {
		t.Fatalf("AddVertex: id=%d N=%d", id, eng.N())
	}
	if err := eng.SetAttributes(id, VertexAttributes{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicEngineStatsCoherence is the regression stress for cache
// counter / cache map coherence when invalidation races with concurrent
// queries: 16 reader goroutines fire mixed queries while the writer
// commits mutation batches. Run under -race in CI. Hits+Misses must
// equal the exact number of queries answered, and the prepared-setting
// count must match the queried grid — across however many snapshot
// advances happened.
func TestDynamicEngineStatsCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := diffMetrics()[0]
	m := buildDiffInstance(cfg, rng)
	store := cfg.newStore()
	store.Grow(m.n)
	for u := 0; u < m.n; u++ {
		store.SetAttributes(int32(u), m.attrs[u])
	}
	eng, err := NewDynamicEngine(m.graph(), store)
	if err != nil {
		t.Fatal(err)
	}
	baseN := m.n

	const readers = 16
	const queriesPerReader = 40
	var queries atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for q := 0; q < queriesPerReader; q++ {
				p := cfg.presets[rng.Intn(len(cfg.presets))]
				var err error
				switch rng.Intn(3) {
				case 0:
					_, err = eng.Enumerate(p.k, p.r, EnumOptions{})
				case 1:
					_, err = eng.FindMaximum(p.k, p.r, MaxOptions{Parallelism: 2})
				default:
					_, err = eng.EnumerateContaining(p.k, p.r, int32(rng.Intn(baseN)), EnumOptions{})
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", w, err)
					return
				}
				queries.Add(1)
			}
			errc <- nil
		}(w)
	}
	// Writer: mutation batches racing the readers.
	mutations := 0
	for i := 0; i < 120; i++ {
		batch := randomBatch(cfg, m, rng)
		if err := eng.ApplyBatch(batch); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		m.apply(batch)
		mutations++
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Hits+st.Misses != queries.Load() {
		t.Fatalf("hit/miss counters diverged from query count across invalidation: %+v, queries=%d",
			st, queries.Load())
	}
	if st.Prepared != len(cfg.presets) {
		t.Fatalf("prepared settings = %d, want %d: %+v", st.Prepared, len(cfg.presets), st)
	}
	if st.Thresholds != len(cfg.presets) { // presets use distinct r values
		t.Fatalf("thresholds = %d, want %d: %+v", st.Thresholds, len(cfg.presets), st)
	}
	if ds := eng.DynamicStats(); ds.Batches != int64(mutations) {
		t.Fatalf("batches = %d, want %d", ds.Batches, mutations)
	}
	// Final differential check at the settled state.
	fresh := freshEngine(cfg, m)
	for _, p := range cfg.presets {
		de, err := eng.Enumerate(p.k, p.r, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fe, err := fresh.Enumerate(p.k, p.r, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("final (k=%d, r=%g)", p.k, p.r), de, fe)
	}
}

// TestDynamicEngineCoreMaintenanceStreams drives skewed update streams
// — insert-heavy and remove-heavy, on both metrics — and asserts after
// every step that the maintained core numbers equal a fresh peeling of
// each filtered graph, and that query results match a from-scratch
// engine. Skewed streams stress the two asymmetric halves of the Li &
// Yu-style repair (insertions can only raise core numbers, removals
// only lower them).
func TestDynamicEngineCoreMaintenanceStreams(t *testing.T) {
	steps := 150
	if testing.Short() {
		steps = 50
	}
	for _, cfg := range diffMetrics() {
		for _, stream := range []struct {
			name    string
			addFrac int // percent of edge ops that are insertions
		}{{"insert-heavy", 85}, {"remove-heavy", 15}} {
			cfg, stream := cfg, stream
			t.Run(cfg.name+"/"+stream.name, func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(77))
				m := buildDiffInstance(cfg, rng)
				store := cfg.newStore()
				store.Grow(m.n)
				for u := 0; u < m.n; u++ {
					store.SetAttributes(int32(u), m.attrs[u])
				}
				eng, err := NewDynamicEngine(m.graph(), store)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range cfg.presets {
					if err := eng.Warm(p.k, p.r); err != nil {
						t.Fatal(err)
					}
				}
				for step := 0; step < steps; step++ {
					var up Update
					if rng.Intn(100) < stream.addFrac {
						u := int32(rng.Intn(m.n))
						v := int32((int(u) + 4*(1+rng.Intn(m.n/4))) % m.n)
						if rng.Intn(4) == 0 {
							v = int32(rng.Intn(m.n))
						}
						if u == v {
							v = (v + 1) % int32(m.n)
						}
						up = AddEdgeUpdate(u, v)
					} else if es := m.sortedEdges(); len(es) > 0 {
						e := es[rng.Intn(len(es))]
						up = RemoveEdgeUpdate(e[0], e[1])
					} else {
						continue
					}
					if err := eng.ApplyBatch([]Update{up}); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					m.apply([]Update{up})
					assertMaintainedCores(t, eng, fmt.Sprintf("step %d", step))
				}
				ds := eng.DynamicStats()
				if ds.PatchesIncremental == 0 {
					t.Fatalf("%s stream never took the incremental path: %+v", stream.name, ds)
				}
				fresh := freshEngine(cfg, m)
				for _, p := range cfg.presets {
					de, err := eng.Enumerate(p.k, p.r, EnumOptions{})
					if err != nil {
						t.Fatal(err)
					}
					fe, err := fresh.Enumerate(p.k, p.r, EnumOptions{})
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, fmt.Sprintf("final (k=%d, r=%g)", p.k, p.r), de, fe)
				}
				t.Logf("%s/%s: %d steps, incremental=%d full=%d visited=%d",
					cfg.name, stream.name, steps, ds.PatchesIncremental, ds.PatchesFull, ds.CoreVisited)
			})
		}
	}
}

// TestDynamicEngineReadersNotStarvedByRebuild is the regression for
// the write path holding the engine lock across snapshot rebuilds: a
// structure-only commit is parked mid-rebuild (via the preAdvance test
// hook, which runs outside d.mu) and queries must still complete —
// they would block forever on d.mu under the old
// rebuild-under-write-lock behaviour.
func TestDynamicEngineReadersNotStarvedByRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := diffMetrics()[0]
	m := buildDiffInstance(cfg, rng)
	store := cfg.newStore()
	store.Grow(m.n)
	for u := 0; u < m.n; u++ {
		store.SetAttributes(int32(u), m.attrs[u])
	}
	eng, err := NewDynamicEngine(m.graph(), store)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.presets[0]
	if err := eng.Warm(p.k, p.r); err != nil {
		t.Fatal(err)
	}
	versionBefore := eng.DynamicStats().Version

	// Pick an edge that is genuinely absent: adding an existing edge is
	// an effective no-op and would skip the rebuild entirely.
	var au, av int32 = -1, -1
	for u := int32(0); u < int32(m.n) && au < 0; u++ {
		for v := u + 1; v < int32(m.n); v++ {
			if !m.edges[normPair(u, v)] {
				au, av = u, v
				break
			}
		}
	}
	if au < 0 {
		t.Fatal("instance is a complete graph; cannot pick an absent edge")
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	eng.preAdvance = func() {
		close(entered)
		<-release
	}
	done := make(chan error, 1)
	go func() { done <- eng.AddEdge(au, av) }() // structure-only commit
	<-entered                                   // the commit is now mid-rebuild

	// Queries against the still-current snapshot must complete while
	// the rebuild is parked; a timeout here means the write path held
	// the engine lock across the rebuild.
	queried := make(chan error, 1)
	go func() {
		_, err := eng.Enumerate(p.k, p.r, EnumOptions{})
		queried <- err
	}()
	select {
	case err := <-queried:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query blocked behind an in-flight snapshot rebuild")
	}
	if v := eng.DynamicStats().Version; v != versionBefore {
		t.Fatalf("snapshot published before the rebuild finished: version %d -> %d", versionBefore, v)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v := eng.DynamicStats().Version; v != versionBefore+1 {
		t.Fatalf("commit did not publish: version %d -> %d", versionBefore, v)
	}
}

// TestDynamicEngineGroupCommitStress hammers the write path with 16
// concurrent writers over disjoint edge slots (so per-writer program
// order fully determines the final graph) while readers query — the
// race-detector target for the group-commit machinery. Afterwards the
// per-batch counters must be exact, and the settled state must match
// the mirror and a from-scratch engine.
func TestDynamicEngineGroupCommitStress(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	cfg := diffMetrics()[0]
	m := buildDiffInstance(cfg, rng)
	store := cfg.newStore()
	store.Grow(m.n)
	for u := 0; u < m.n; u++ {
		store.SetAttributes(int32(u), m.attrs[u])
	}
	eng, err := NewDynamicEngine(m.graph(), store)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.presets[0]
	if err := eng.Warm(p.k, p.r); err != nil {
		t.Fatal(err)
	}
	// Slow each structure-only rebuild down slightly so followers pile
	// up behind the leader and rounds genuinely coalesce; on a bare
	// 56-vertex instance commits otherwise finish faster than writers
	// can collide.
	eng.preAdvance = func() { time.Sleep(500 * time.Microsecond) }

	// Writer w owns the edge slots {(w, w+16+i)}: all writers' update
	// sets commute, so the final edge set is each writer's last word on
	// each slot, whatever the commit interleaving.
	const writers = 16
	batchesPer := 12
	if testing.Short() {
		batchesPer = 6
	}
	type slotOp struct {
		up  Update
		add bool
	}
	plans := make([][][]slotOp, writers)
	seedRng := rand.New(rand.NewSource(99))
	for w := 0; w < writers; w++ {
		plans[w] = make([][]slotOp, batchesPer)
		for b := 0; b < batchesPer; b++ {
			ops := make([]slotOp, 1+seedRng.Intn(3))
			for i := range ops {
				u := int32(w)
				v := int32((w + 17 + seedRng.Intn(8)) % m.n)
				if u == v {
					v = (v + 1) % int32(m.n)
				}
				if seedRng.Intn(2) == 0 {
					ops[i] = slotOp{up: AddEdgeUpdate(u, v), add: true}
				} else {
					ops[i] = slotOp{up: RemoveEdgeUpdate(u, v)}
				}
			}
			plans[w][b] = ops
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+4)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, ops := range plans[w] {
				batch := make([]Update, len(ops))
				for i, op := range ops {
					batch[i] = op.up
				}
				if err := eng.ApplyBatch(batch); err != nil {
					errc <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for q := 0; q < 25; q++ {
				if _, err := eng.Enumerate(p.k, p.r, EnumOptions{}); err != nil {
					errc <- fmt.Errorf("reader %d: %v", rdr, err)
					return
				}
			}
			errc <- nil
		}(rdr)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Replay every writer's plan into the mirror (disjoint slots, so
	// order across writers is irrelevant).
	var totalBatches, totalOps int64
	for w := 0; w < writers; w++ {
		for _, ops := range plans[w] {
			totalBatches++
			for _, op := range ops {
				totalOps++
				m.apply([]Update{op.up})
			}
		}
	}
	ds := eng.DynamicStats()
	if ds.Batches != totalBatches || ds.Updates != totalOps {
		t.Fatalf("batches=%d updates=%d, want %d/%d: %+v", ds.Batches, ds.Updates, totalBatches, totalOps, ds)
	}
	if ds.GroupCommits == 0 || ds.GroupCommits > ds.Batches {
		t.Fatalf("implausible group-commit count: %+v", ds)
	}
	if ds.GroupCommits == ds.Batches {
		t.Errorf("no coalescing observed: every batch committed in its own round (%d rounds)", ds.GroupCommits)
	}
	if ds.Version > ds.GroupCommits {
		t.Fatalf("more published versions than commit rounds: %+v", ds)
	}
	if eng.N() != m.n || eng.M() != len(m.edges) {
		t.Fatalf("engine N=%d M=%d, mirror N=%d M=%d", eng.N(), eng.M(), m.n, len(m.edges))
	}
	assertMaintainedCores(t, eng, "settled")
	fresh := freshEngine(cfg, m)
	de, err := eng.Enumerate(p.k, p.r, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := fresh.Enumerate(p.k, p.r, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "settled", de, fe)
	t.Logf("batches=%d rounds=%d coalesce=%.2f", ds.Batches, ds.GroupCommits,
		float64(ds.Batches)/float64(ds.GroupCommits))
}

// TestDynamicEngineGroupCommitAtomicity drives mixed valid/invalid
// batches through concurrent writers: each invalid batch must be
// rejected with its own *BatchError while every valid batch commits,
// including valid batches that race invalid ones into the same round.
func TestDynamicEngineGroupCommitAtomicity(t *testing.T) {
	g := NewGraphBuilder(8)
	g.AddEdge(0, 1)
	eng, err := NewDynamicEngine(g.Build(), NewGeoAttributes(8))
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const rounds = 20
	var wg sync.WaitGroup
	var rejected, committed atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w%2 == 0 {
					// Invalid: out-of-range endpoint; always rejected.
					err := eng.ApplyBatch([]Update{AddEdgeUpdate(0, 1), AddEdgeUpdate(3, 127)})
					var be *BatchError
					if err == nil || !errors.As(err, &be) || be.Index != 1 {
						panic(fmt.Sprintf("writer %d: invalid batch: got %v", w, err))
					}
					rejected.Add(1)
				} else {
					u := int32(w)
					v := int32((w + 1 + i) % 8)
					if u == v {
						v = (v + 1) % 8
					}
					if err := eng.ApplyBatch([]Update{AddEdgeUpdate(u, v)}); err != nil {
						panic(fmt.Sprintf("writer %d: valid batch rejected: %v", w, err))
					}
					committed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	ds := eng.DynamicStats()
	if ds.Batches != committed.Load() {
		t.Fatalf("batches=%d, want %d accepted", ds.Batches, committed.Load())
	}
	if rejected.Load() != writers/2*rounds {
		t.Fatalf("rejected=%d, want %d", rejected.Load(), writers/2*rounds)
	}
}
