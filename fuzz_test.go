package krcore

import (
	"fmt"
	"testing"
)

// FuzzDynamicApply decodes arbitrary byte streams into update batches
// for a DynamicEngine — including duplicate edges, self-loops,
// out-of-range vertex ids and empty batches — and requires that every
// batch either applies atomically or errors (never panics), that the
// accepted updates keep the engine's graph consistent with a plain
// mirror, and that query results after the stream equal a fresh Engine
// built from the mirrored state.
func FuzzDynamicApply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 1, 0, 1})  // duplicate edge, both orders
	f.Add([]byte{0, 3, 3})                    // self-loop
	f.Add([]byte{4, 200, 9, 4, 9, 200})       // out-of-range raw ids
	f.Add([]byte{5, 0, 0, 5, 0, 0})           // empty batches
	f.Add([]byte{2, 0, 0, 0, 8, 0, 1, 8, 3})  // grow then wire the new vertex
	f.Add([]byte{3, 1, 40, 1, 0, 1, 0, 4, 5}) // attr move + removals
	f.Add([]byte{0, 0, 1, 3, 0, 99, 1, 0, 1, 2, 0, 0, 0, 8, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n0 = 8
		m := &dynMirror{n: n0, edges: map[[2]int32]bool{}, attrs: make([]VertexAttributes, n0)}
		for u := 0; u < n0; u++ {
			m.attrs[u] = VertexAttributes{X: float64(u % 4), Y: float64(u / 4)}
			m.edges[normPair(int32(u), int32((u+1)%n0))] = true
			m.edges[normPair(int32(u), int32((u+2)%n0))] = true
		}
		store := NewGeoAttributes(0)
		store.Grow(m.n)
		for u := 0; u < m.n; u++ {
			store.SetAttributes(int32(u), m.attrs[u])
		}
		eng, err := NewDynamicEngine(m.graph(), store)
		if err != nil {
			t.Fatal(err)
		}
		// Warm the query presets up front so the incremental maintenance
		// path (rather than lazy full preparation) serves every step, and
		// the per-step core-number check below has entries to inspect.
		for _, p := range []struct {
			k int
			r float64
		}{{2, 1.6}, {3, 3.2}} {
			if err := eng.Warm(p.k, p.r); err != nil {
				t.Fatal(err)
			}
		}

		ops := 0
		for i := 0; i+2 < len(data) && ops < 60; i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			var batch []Update
			switch op % 6 {
			case 0: // add edge, endpoints reduced into range
				batch = []Update{AddEdgeUpdate(int32(int(a)%m.n), int32(int(b)%m.n))}
			case 1: // remove edge, endpoints reduced into range
				batch = []Update{RemoveEdgeUpdate(int32(int(a)%m.n), int32(int(b)%m.n))}
			case 2: // grow and wire the new vertex
				if m.n >= 24 {
					continue
				}
				nv := int32(m.n)
				batch = []Update{
					AddVertexUpdate(),
					SetAttributesUpdate(nv, VertexAttributes{X: float64(a % 8), Y: float64(b % 8)}),
					AddEdgeUpdate(nv, int32(int(a)%m.n)),
				}
			case 3: // attribute move
				batch = []Update{SetAttributesUpdate(int32(int(a)%m.n), VertexAttributes{
					X: float64(b%16) - 4, Y: float64(b/16) - 4,
				})}
			case 4: // raw ids: may be out of range or self-looping
				batch = []Update{AddEdgeUpdate(int32(a), int32(b))}
			default: // empty batch
				batch = nil
			}
			// An error is legal only for single edge ops with invalid
			// endpoints (self-loop or out of range); anything else the
			// engine must accept, and accepted batches go to the mirror.
			if err := eng.ApplyBatch(batch); err == nil {
				m.apply(batch)
			} else if len(batch) == 1 && (batch[0].Op == OpAddEdge || batch[0].Op == OpRemoveEdge) {
				u, v := batch[0].U, batch[0].V
				if u != v && u >= 0 && v >= 0 && int(u) < m.n && int(v) < m.n {
					t.Fatalf("valid edge op (%d,%d) rejected: %v", u, v, err)
				}
			} else {
				t.Fatalf("valid batch rejected: %v", err)
			}
			ops++
			if eng.N() != m.n || eng.M() != len(m.edges) {
				t.Fatalf("engine N=%d M=%d, mirror N=%d M=%d", eng.N(), eng.M(), m.n, len(m.edges))
			}
			// The maintained core numbers must equal a fresh peeling of
			// each filtered graph after every accepted batch.
			assertMaintainedCores(t, eng, fmt.Sprintf("op %d", ops))
		}

		// Differential check at the settled state.
		fresh := freshEngineGeo(m)
		for _, p := range []struct {
			k int
			r float64
		}{{2, 1.6}, {3, 3.2}} {
			de, err := eng.Enumerate(p.k, p.r, EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fe, err := fresh.Enumerate(p.k, p.r, EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(de.Cores) != fmt.Sprint(fe.Cores) {
				t.Fatalf("(k=%d, r=%g): dynamic %v != fresh %v", p.k, p.r, de.Cores, fe.Cores)
			}
		}
	})
}

// freshEngineGeo rebuilds a from-scratch geo Engine over the mirror.
func freshEngineGeo(m *dynMirror) *Engine {
	store := NewGeoAttributes(0)
	store.Grow(m.n)
	for u := 0; u < m.n; u++ {
		store.SetAttributes(int32(u), m.attrs[u])
	}
	return NewEngine(m.graph(), store.Metric())
}
